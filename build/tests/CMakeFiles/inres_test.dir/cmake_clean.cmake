file(REMOVE_RECURSE
  "CMakeFiles/inres_test.dir/integration/inres_test.cpp.o"
  "CMakeFiles/inres_test.dir/integration/inres_test.cpp.o.d"
  "inres_test"
  "inres_test.pdb"
  "inres_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
