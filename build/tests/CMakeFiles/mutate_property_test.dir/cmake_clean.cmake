file(REMOVE_RECURSE
  "CMakeFiles/mutate_property_test.dir/sim/mutate_property_test.cpp.o"
  "CMakeFiles/mutate_property_test.dir/sim/mutate_property_test.cpp.o.d"
  "mutate_property_test"
  "mutate_property_test.pdb"
  "mutate_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
