# Empty dependencies file for mutate_property_test.
# This may be replaced when dependencies are built.
