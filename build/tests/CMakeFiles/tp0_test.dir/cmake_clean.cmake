file(REMOVE_RECURSE
  "CMakeFiles/tp0_test.dir/integration/tp0_test.cpp.o"
  "CMakeFiles/tp0_test.dir/integration/tp0_test.cpp.o.d"
  "tp0_test"
  "tp0_test.pdb"
  "tp0_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
