# Empty dependencies file for tp0_test.
# This may be replaced when dependencies are built.
