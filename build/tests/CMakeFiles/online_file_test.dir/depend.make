# Empty dependencies file for online_file_test.
# This may be replaced when dependencies are built.
