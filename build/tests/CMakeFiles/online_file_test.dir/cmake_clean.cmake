file(REMOVE_RECURSE
  "CMakeFiles/online_file_test.dir/core/online_file_test.cpp.o"
  "CMakeFiles/online_file_test.dir/core/online_file_test.cpp.o.d"
  "online_file_test"
  "online_file_test.pdb"
  "online_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
