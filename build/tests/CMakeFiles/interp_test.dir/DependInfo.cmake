
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/interp_test.cpp" "tests/CMakeFiles/interp_test.dir/runtime/interp_test.cpp.o" "gcc" "tests/CMakeFiles/interp_test.dir/runtime/interp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_estelle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
