file(REMOVE_RECURSE
  "CMakeFiles/tam_runtime_test.dir/codegen/tam_runtime_test.cpp.o"
  "CMakeFiles/tam_runtime_test.dir/codegen/tam_runtime_test.cpp.o.d"
  "tam_runtime_test"
  "tam_runtime_test.pdb"
  "tam_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tam_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
