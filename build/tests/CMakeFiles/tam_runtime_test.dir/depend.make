# Empty dependencies file for tam_runtime_test.
# This may be replaced when dependencies are built.
