file(REMOVE_RECURSE
  "CMakeFiles/partial_test.dir/core/partial_test.cpp.o"
  "CMakeFiles/partial_test.dir/core/partial_test.cpp.o.d"
  "partial_test"
  "partial_test.pdb"
  "partial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
