file(REMOVE_RECURSE
  "CMakeFiles/fuzz_smoke_test.dir/fuzz/fuzz_smoke_test.cpp.o"
  "CMakeFiles/fuzz_smoke_test.dir/fuzz/fuzz_smoke_test.cpp.o.d"
  "fuzz_smoke_test"
  "fuzz_smoke_test.pdb"
  "fuzz_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
