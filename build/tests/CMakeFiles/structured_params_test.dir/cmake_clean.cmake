file(REMOVE_RECURSE
  "CMakeFiles/structured_params_test.dir/integration/structured_params_test.cpp.o"
  "CMakeFiles/structured_params_test.dir/integration/structured_params_test.cpp.o.d"
  "structured_params_test"
  "structured_params_test.pdb"
  "structured_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
