# Empty compiler generated dependencies file for structured_params_test.
# This may be replaced when dependencies are built.
