# Empty compiler generated dependencies file for lapd_test.
# This may be replaced when dependencies are built.
