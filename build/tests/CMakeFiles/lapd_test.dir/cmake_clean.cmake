file(REMOVE_RECURSE
  "CMakeFiles/lapd_test.dir/integration/lapd_test.cpp.o"
  "CMakeFiles/lapd_test.dir/integration/lapd_test.cpp.o.d"
  "lapd_test"
  "lapd_test.pdb"
  "lapd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
