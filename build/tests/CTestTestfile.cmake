# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/mdfs_test[1]_include.cmake")
include("/root/repo/build/tests/online_file_test[1]_include.cmake")
include("/root/repo/build/tests/partial_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/specs_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/lint_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/tam_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tp0_test[1]_include.cmake")
include("/root/repo/build/tests/lapd_test[1]_include.cmake")
include("/root/repo/build/tests/inres_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/structured_params_test[1]_include.cmake")
