file(REMOVE_RECURSE
  "CMakeFiles/tango_estelle.dir/estelle/ast.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/ast.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/lexer.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/lexer.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/parser.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/parser.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/printer.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/printer.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/sema.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/sema.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/spec.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/spec.cpp.o.d"
  "CMakeFiles/tango_estelle.dir/estelle/types.cpp.o"
  "CMakeFiles/tango_estelle.dir/estelle/types.cpp.o.d"
  "libtango_estelle.a"
  "libtango_estelle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_estelle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
