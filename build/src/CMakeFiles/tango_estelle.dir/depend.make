# Empty dependencies file for tango_estelle.
# This may be replaced when dependencies are built.
