file(REMOVE_RECURSE
  "libtango_estelle.a"
)
