
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estelle/ast.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/ast.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/ast.cpp.o.d"
  "/root/repo/src/estelle/lexer.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/lexer.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/lexer.cpp.o.d"
  "/root/repo/src/estelle/parser.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/parser.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/parser.cpp.o.d"
  "/root/repo/src/estelle/printer.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/printer.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/printer.cpp.o.d"
  "/root/repo/src/estelle/sema.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/sema.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/sema.cpp.o.d"
  "/root/repo/src/estelle/spec.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/spec.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/spec.cpp.o.d"
  "/root/repo/src/estelle/types.cpp" "src/CMakeFiles/tango_estelle.dir/estelle/types.cpp.o" "gcc" "src/CMakeFiles/tango_estelle.dir/estelle/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
