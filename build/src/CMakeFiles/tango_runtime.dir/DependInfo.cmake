
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heap.cpp" "src/CMakeFiles/tango_runtime.dir/runtime/heap.cpp.o" "gcc" "src/CMakeFiles/tango_runtime.dir/runtime/heap.cpp.o.d"
  "/root/repo/src/runtime/interp.cpp" "src/CMakeFiles/tango_runtime.dir/runtime/interp.cpp.o" "gcc" "src/CMakeFiles/tango_runtime.dir/runtime/interp.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/CMakeFiles/tango_runtime.dir/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/tango_runtime.dir/runtime/machine.cpp.o.d"
  "/root/repo/src/runtime/value.cpp" "src/CMakeFiles/tango_runtime.dir/runtime/value.cpp.o" "gcc" "src/CMakeFiles/tango_runtime.dir/runtime/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_estelle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
