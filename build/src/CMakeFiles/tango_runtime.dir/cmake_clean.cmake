file(REMOVE_RECURSE
  "CMakeFiles/tango_runtime.dir/runtime/heap.cpp.o"
  "CMakeFiles/tango_runtime.dir/runtime/heap.cpp.o.d"
  "CMakeFiles/tango_runtime.dir/runtime/interp.cpp.o"
  "CMakeFiles/tango_runtime.dir/runtime/interp.cpp.o.d"
  "CMakeFiles/tango_runtime.dir/runtime/machine.cpp.o"
  "CMakeFiles/tango_runtime.dir/runtime/machine.cpp.o.d"
  "CMakeFiles/tango_runtime.dir/runtime/value.cpp.o"
  "CMakeFiles/tango_runtime.dir/runtime/value.cpp.o.d"
  "libtango_runtime.a"
  "libtango_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
