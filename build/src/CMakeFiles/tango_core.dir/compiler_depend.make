# Empty compiler generated dependencies file for tango_core.
# This may be replaced when dependencies are built.
