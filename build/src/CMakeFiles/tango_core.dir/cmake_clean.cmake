file(REMOVE_RECURSE
  "CMakeFiles/tango_core.dir/core/dfs.cpp.o"
  "CMakeFiles/tango_core.dir/core/dfs.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/executor.cpp.o"
  "CMakeFiles/tango_core.dir/core/executor.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/generator.cpp.o"
  "CMakeFiles/tango_core.dir/core/generator.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/mdfs.cpp.o"
  "CMakeFiles/tango_core.dir/core/mdfs.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/options.cpp.o"
  "CMakeFiles/tango_core.dir/core/options.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/search_state.cpp.o"
  "CMakeFiles/tango_core.dir/core/search_state.cpp.o.d"
  "CMakeFiles/tango_core.dir/core/stats.cpp.o"
  "CMakeFiles/tango_core.dir/core/stats.cpp.o.d"
  "libtango_core.a"
  "libtango_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
