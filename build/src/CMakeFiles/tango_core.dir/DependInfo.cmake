
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dfs.cpp" "src/CMakeFiles/tango_core.dir/core/dfs.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/dfs.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/CMakeFiles/tango_core.dir/core/executor.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/executor.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/CMakeFiles/tango_core.dir/core/generator.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/generator.cpp.o.d"
  "/root/repo/src/core/mdfs.cpp" "src/CMakeFiles/tango_core.dir/core/mdfs.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/mdfs.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/tango_core.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/options.cpp.o.d"
  "/root/repo/src/core/search_state.cpp" "src/CMakeFiles/tango_core.dir/core/search_state.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/search_state.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/tango_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/tango_core.dir/core/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_estelle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
