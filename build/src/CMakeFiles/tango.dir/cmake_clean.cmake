file(REMOVE_RECURSE
  "CMakeFiles/tango.dir/cli/main.cpp.o"
  "CMakeFiles/tango.dir/cli/main.cpp.o.d"
  "tango"
  "tango.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
