file(REMOVE_RECURSE
  "CMakeFiles/tango_analysis.dir/analysis/coverage.cpp.o"
  "CMakeFiles/tango_analysis.dir/analysis/coverage.cpp.o.d"
  "CMakeFiles/tango_analysis.dir/analysis/lint.cpp.o"
  "CMakeFiles/tango_analysis.dir/analysis/lint.cpp.o.d"
  "libtango_analysis.a"
  "libtango_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
