# Empty compiler generated dependencies file for tango_analysis.
# This may be replaced when dependencies are built.
