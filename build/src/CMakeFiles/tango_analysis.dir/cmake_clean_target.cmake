file(REMOVE_RECURSE
  "libtango_analysis.a"
)
