file(REMOVE_RECURSE
  "libtango_trace.a"
)
