# Empty dependencies file for tango_trace.
# This may be replaced when dependencies are built.
