file(REMOVE_RECURSE
  "CMakeFiles/tango_trace.dir/trace/dynamic_source.cpp.o"
  "CMakeFiles/tango_trace.dir/trace/dynamic_source.cpp.o.d"
  "CMakeFiles/tango_trace.dir/trace/event.cpp.o"
  "CMakeFiles/tango_trace.dir/trace/event.cpp.o.d"
  "CMakeFiles/tango_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/tango_trace.dir/trace/trace_io.cpp.o.d"
  "libtango_trace.a"
  "libtango_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
