file(REMOVE_RECURSE
  "CMakeFiles/tango_sim.dir/sim/mutate.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/mutate.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/tango_sim.dir/sim/workloads.cpp.o"
  "CMakeFiles/tango_sim.dir/sim/workloads.cpp.o.d"
  "libtango_sim.a"
  "libtango_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
