# Empty compiler generated dependencies file for tango_transform.
# This may be replaced when dependencies are built.
