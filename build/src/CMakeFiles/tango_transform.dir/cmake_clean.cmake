file(REMOVE_RECURSE
  "CMakeFiles/tango_transform.dir/transform/normal_form.cpp.o"
  "CMakeFiles/tango_transform.dir/transform/normal_form.cpp.o.d"
  "libtango_transform.a"
  "libtango_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
