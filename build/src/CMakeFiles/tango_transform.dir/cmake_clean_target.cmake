file(REMOVE_RECURSE
  "libtango_transform.a"
)
