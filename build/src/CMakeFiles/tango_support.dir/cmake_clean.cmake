file(REMOVE_RECURSE
  "CMakeFiles/tango_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/tango_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/tango_support.dir/support/text.cpp.o"
  "CMakeFiles/tango_support.dir/support/text.cpp.o.d"
  "libtango_support.a"
  "libtango_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
