file(REMOVE_RECURSE
  "libtango_support.a"
)
