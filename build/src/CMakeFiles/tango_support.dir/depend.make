# Empty dependencies file for tango_support.
# This may be replaced when dependencies are built.
