# Empty compiler generated dependencies file for tango_specs.
# This may be replaced when dependencies are built.
