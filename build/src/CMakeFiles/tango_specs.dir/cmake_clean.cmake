file(REMOVE_RECURSE
  "CMakeFiles/tango_specs.dir/specs/builtin_specs.cpp.o"
  "CMakeFiles/tango_specs.dir/specs/builtin_specs.cpp.o.d"
  "libtango_specs.a"
  "libtango_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
