file(REMOVE_RECURSE
  "libtango_specs.a"
)
