# Empty dependencies file for tango_fuzz.
# This may be replaced when dependencies are built.
