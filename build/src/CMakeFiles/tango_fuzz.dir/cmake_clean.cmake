file(REMOVE_RECURSE
  "CMakeFiles/tango_fuzz.dir/fuzz/differential.cpp.o"
  "CMakeFiles/tango_fuzz.dir/fuzz/differential.cpp.o.d"
  "CMakeFiles/tango_fuzz.dir/fuzz/fuzz.cpp.o"
  "CMakeFiles/tango_fuzz.dir/fuzz/fuzz.cpp.o.d"
  "CMakeFiles/tango_fuzz.dir/fuzz/generator.cpp.o"
  "CMakeFiles/tango_fuzz.dir/fuzz/generator.cpp.o.d"
  "libtango_fuzz.a"
  "libtango_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
