
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/differential.cpp" "src/CMakeFiles/tango_fuzz.dir/fuzz/differential.cpp.o" "gcc" "src/CMakeFiles/tango_fuzz.dir/fuzz/differential.cpp.o.d"
  "/root/repo/src/fuzz/fuzz.cpp" "src/CMakeFiles/tango_fuzz.dir/fuzz/fuzz.cpp.o" "gcc" "src/CMakeFiles/tango_fuzz.dir/fuzz/fuzz.cpp.o.d"
  "/root/repo/src/fuzz/generator.cpp" "src/CMakeFiles/tango_fuzz.dir/fuzz/generator.cpp.o" "gcc" "src/CMakeFiles/tango_fuzz.dir/fuzz/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_estelle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tango_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
