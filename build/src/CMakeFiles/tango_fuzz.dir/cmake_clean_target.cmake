file(REMOVE_RECURSE
  "libtango_fuzz.a"
)
