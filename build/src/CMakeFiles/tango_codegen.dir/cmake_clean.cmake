file(REMOVE_RECURSE
  "CMakeFiles/tango_codegen.dir/codegen/cpp_generator.cpp.o"
  "CMakeFiles/tango_codegen.dir/codegen/cpp_generator.cpp.o.d"
  "libtango_codegen.a"
  "libtango_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
