file(REMOVE_RECURSE
  "libtango_codegen.a"
)
