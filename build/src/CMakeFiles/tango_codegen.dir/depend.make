# Empty dependencies file for tango_codegen.
# This may be replaced when dependencies are built.
