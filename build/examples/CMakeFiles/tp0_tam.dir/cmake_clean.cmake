file(REMOVE_RECURSE
  "CMakeFiles/tp0_tam.dir/tp0_tam.cpp.o"
  "CMakeFiles/tp0_tam.dir/tp0_tam.cpp.o.d"
  "tp0_tam"
  "tp0_tam.cpp"
  "tp0_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp0_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
