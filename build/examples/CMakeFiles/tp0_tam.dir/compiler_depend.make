# Empty compiler generated dependencies file for tp0_tam.
# This may be replaced when dependencies are built.
