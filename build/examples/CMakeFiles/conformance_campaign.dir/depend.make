# Empty dependencies file for conformance_campaign.
# This may be replaced when dependencies are built.
