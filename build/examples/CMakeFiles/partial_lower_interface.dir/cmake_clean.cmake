file(REMOVE_RECURSE
  "CMakeFiles/partial_lower_interface.dir/partial_lower_interface.cpp.o"
  "CMakeFiles/partial_lower_interface.dir/partial_lower_interface.cpp.o.d"
  "partial_lower_interface"
  "partial_lower_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_lower_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
