# Empty compiler generated dependencies file for partial_lower_interface.
# This may be replaced when dependencies are built.
