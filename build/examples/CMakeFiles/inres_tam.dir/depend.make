# Empty dependencies file for inres_tam.
# This may be replaced when dependencies are built.
