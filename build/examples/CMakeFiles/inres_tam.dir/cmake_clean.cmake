file(REMOVE_RECURSE
  "CMakeFiles/inres_tam.dir/inres_tam.cpp.o"
  "CMakeFiles/inres_tam.dir/inres_tam.cpp.o.d"
  "inres_tam"
  "inres_tam.cpp"
  "inres_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inres_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
