file(REMOVE_RECURSE
  "CMakeFiles/abp_tam.dir/abp_tam.cpp.o"
  "CMakeFiles/abp_tam.dir/abp_tam.cpp.o.d"
  "abp_tam"
  "abp_tam.cpp"
  "abp_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
