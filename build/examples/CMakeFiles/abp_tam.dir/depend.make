# Empty dependencies file for abp_tam.
# This may be replaced when dependencies are built.
