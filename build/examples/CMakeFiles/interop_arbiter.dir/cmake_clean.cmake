file(REMOVE_RECURSE
  "CMakeFiles/interop_arbiter.dir/interop_arbiter.cpp.o"
  "CMakeFiles/interop_arbiter.dir/interop_arbiter.cpp.o.d"
  "interop_arbiter"
  "interop_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
