# Empty dependencies file for interop_arbiter.
# This may be replaced when dependencies are built.
