# Empty dependencies file for lapd_tam.
# This may be replaced when dependencies are built.
