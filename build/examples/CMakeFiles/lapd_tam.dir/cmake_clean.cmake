file(REMOVE_RECURSE
  "CMakeFiles/lapd_tam.dir/lapd_tam.cpp.o"
  "CMakeFiles/lapd_tam.dir/lapd_tam.cpp.o.d"
  "lapd_tam"
  "lapd_tam.cpp"
  "lapd_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapd_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
