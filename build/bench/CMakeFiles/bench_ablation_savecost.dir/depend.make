# Empty dependencies file for bench_ablation_savecost.
# This may be replaced when dependencies are built.
