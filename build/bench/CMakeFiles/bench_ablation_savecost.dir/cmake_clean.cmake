file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_savecost.dir/bench_ablation_savecost.cpp.o"
  "CMakeFiles/bench_ablation_savecost.dir/bench_ablation_savecost.cpp.o.d"
  "bench_ablation_savecost"
  "bench_ablation_savecost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_savecost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
