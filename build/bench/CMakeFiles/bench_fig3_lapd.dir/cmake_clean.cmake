file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lapd.dir/bench_fig3_lapd.cpp.o"
  "CMakeFiles/bench_fig3_lapd.dir/bench_fig3_lapd.cpp.o.d"
  "bench_fig3_lapd"
  "bench_fig3_lapd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lapd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
