# Empty dependencies file for bench_fig4_tp0.
# This may be replaced when dependencies are built.
