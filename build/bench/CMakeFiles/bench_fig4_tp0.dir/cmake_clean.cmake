file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tp0.dir/bench_fig4_tp0.cpp.o"
  "CMakeFiles/bench_fig4_tp0.dir/bench_fig4_tp0.cpp.o.d"
  "bench_fig4_tp0"
  "bench_fig4_tp0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tp0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
