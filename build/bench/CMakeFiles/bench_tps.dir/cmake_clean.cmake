file(REMOVE_RECURSE
  "CMakeFiles/bench_tps.dir/bench_tps.cpp.o"
  "CMakeFiles/bench_tps.dir/bench_tps.cpp.o.d"
  "bench_tps"
  "bench_tps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
