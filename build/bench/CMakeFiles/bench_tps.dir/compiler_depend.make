# Empty compiler generated dependencies file for bench_tps.
# This may be replaced when dependencies are built.
