// Deterministic differential-fuzzing smoke test: a short campaign over the
// paper's two richest builtin specifications must produce zero engine
// disagreements and zero oracle violations. The iteration count is a CMake
// cache knob (TANGO_FUZZ_ITERATIONS) so CI can dial the effort; the ctest
// label `fuzz` lets `ctest -L fuzz` run just this campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "fuzz/fuzz.hpp"
#include "sim/mutate.hpp"
#include "support/diagnostics.hpp"

#ifndef TANGO_FUZZ_ITERATIONS
#define TANGO_FUZZ_ITERATIONS 50
#endif

namespace tango::fuzz {
namespace {

TEST(FuzzSmoke, AbpAndInresCampaignIsClean) {
  FuzzConfig config;
  config.seed = 1;
  config.iterations = TANGO_FUZZ_ITERATIONS;
  config.specs = {"abp", "inres"};
  std::ostringstream log;
  const FuzzReport report = run_fuzz(config, &log);
  EXPECT_TRUE(report.clean()) << log.str();
  EXPECT_EQ(report.iterations, TANGO_FUZZ_ITERATIONS);
  EXPECT_GT(report.traces_analyzed, 0u);
  EXPECT_GT(report.verdicts, 0u);
  EXPECT_GT(report.oracle_checks, 0u);
}

TEST(FuzzSmoke, CampaignIsSeedDeterministic) {
  FuzzConfig config;
  config.seed = 5;
  config.iterations = 3;
  config.specs = {"abp"};
  const FuzzReport a = run_fuzz(config);
  const FuzzReport b = run_fuzz(config);
  EXPECT_EQ(a.traces_analyzed, b.traces_analyzed);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.oracle_checks, b.oracle_checks);
  ASSERT_EQ(a.totals.size(), b.totals.size());
  for (std::size_t i = 0; i < a.totals.size(); ++i) {
    // Same seed, same search: the Figure-3 counters match exactly (only
    // cpu_seconds may differ between runs).
    EXPECT_EQ(a.totals[i].analyses, b.totals[i].analyses);
    EXPECT_EQ(a.totals[i].stats.transitions_executed,
              b.totals[i].stats.transitions_executed);
    EXPECT_EQ(a.totals[i].stats.generates, b.totals[i].stats.generates);
  }
}

TEST(FuzzSmoke, ReportJsonCarriesPerEngineTotals) {
  FuzzConfig config;
  config.seed = 7;
  config.iterations = 2;
  config.specs = {"abp"};
  const FuzzReport report = run_fuzz(config);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"iterations\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engines\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dfs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash-dfs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mdfs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"te\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sa\":"), std::string::npos) << json;
}

TEST(FuzzSmoke, StatsAccumulateAcrossAnalyses) {
  core::Stats a;
  a.transitions_executed = 10;
  a.generates = 5;
  a.restores = 2;
  a.saves = 3;
  a.max_depth = 7;
  a.cpu_seconds = 0.5;
  core::Stats b;
  b.transitions_executed = 1;
  b.generates = 1;
  b.restores = 1;
  b.saves = 1;
  b.max_depth = 12;
  b.cpu_seconds = 0.25;
  a += b;
  EXPECT_EQ(a.transitions_executed, 11u);
  EXPECT_EQ(a.generates, 6u);
  EXPECT_EQ(a.restores, 3u);
  EXPECT_EQ(a.saves, 4u);
  EXPECT_EQ(a.max_depth, 12);  // depth is a maximum, not a sum
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 0.75);
  EXPECT_NE(a.to_json().find("\"te\":11"), std::string::npos);
}

TEST(FuzzSmoke, ParseEnginesAcceptsTheDocumentedSpellings) {
  EXPECT_EQ(parse_engines("").size(), 3u);
  const std::vector<Engine> two = parse_engines("dfs,hash");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], Engine::Dfs);
  EXPECT_EQ(two[1], Engine::HashDfs);
  EXPECT_EQ(parse_engines("hash-dfs")[0], Engine::HashDfs);
  EXPECT_EQ(parse_engines("hashdfs")[0], Engine::HashDfs);
  EXPECT_EQ(parse_engines("mdfs")[0], Engine::Mdfs);
  EXPECT_EQ(parse_engines("online")[0], Engine::Mdfs);
  EXPECT_THROW((void)parse_engines("bfs"), CompileError);
}

TEST(FuzzSmoke, FuzzableSpecsIncludeThePaperExamples) {
  const std::vector<std::string> names = fuzzable_builtin_specs();
  EXPECT_NE(std::find(names.begin(), names.end(), "abp"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inres"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ack"), names.end());
}

tr::Trace numbered_trace(std::size_t n) {
  tr::Trace t(1);
  for (std::size_t i = 0; i < n; ++i) {
    tr::TraceEvent e;
    e.dir = tr::Dir::In;
    e.ip = 0;
    e.interaction = 0;
    t.append(e);
  }
  t.mark_eof();
  return t;
}

TEST(Shrink, BinarySearchFindsTheMinimalFailingPrefix) {
  const tr::Trace trace = numbered_trace(12);
  const tr::Trace shrunk = shrink_to_minimal_failing_prefix(
      trace, [](const tr::Trace& t) { return t.events().size() >= 4; });
  EXPECT_EQ(shrunk.events().size(), 4u);
  EXPECT_TRUE(shrunk.eof());  // truncation keeps the eof marker
}

TEST(Shrink, WholeTraceFailureShrinksToEmpty) {
  const tr::Trace trace = numbered_trace(5);
  const tr::Trace shrunk = shrink_to_minimal_failing_prefix(
      trace, [](const tr::Trace&) { return true; });
  EXPECT_EQ(shrunk.events().size(), 0u);
}

TEST(Shrink, NonMonotoneFailureKeepsTheWholeTrace) {
  // Fails only on the full trace: no proper prefix reproduces it, so the
  // shrinker must fall back to returning the input unchanged.
  const tr::Trace trace = numbered_trace(9);
  const tr::Trace shrunk = shrink_to_minimal_failing_prefix(
      trace, [](const tr::Trace& t) { return t.events().size() == 9; });
  EXPECT_EQ(shrunk.events().size(), 9u);
}

}  // namespace
}  // namespace tango::fuzz
