// TP0 integration tests reproducing the paper's §4.2 observations in
// miniature: valid traces analyze in roughly linear time under order
// checking, invalid traces explode without it, and t17 (disconnect with
// data still buffered) adds the extra fanout the paper describes.
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

class Tp0Test : public ::testing::Test {
 protected:
  est::Spec spec = est::compile_spec(specs::tp0());
};

TEST_F(Tp0Test, HandshakeOnlyTrace) {
  const char* trace =
      "in  u.tconreq\n"
      "out n.cr\n"
      "in  n.cc\n"
      "out u.tconcnf\n";
  for (const Options& opts :
       {Options::none(), Options::io(), Options::ip(), Options::full()}) {
    EXPECT_EQ(analyze_text(spec, trace, opts).verdict, Verdict::Valid);
  }
}

TEST_F(Tp0Test, PassiveOpenFromTheNetworkSide) {
  const char* trace =
      "in  n.cr\n"
      "out n.cc\n"
      "out u.tconind\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(Tp0Test, GeneratedTracesValidUnderAllModes) {
  for (std::uint32_t seed : {1u, 7u}) {
    tr::Trace trace = sim::tp0_trace(spec, 3, 3, /*disconnect=*/true, seed);
    for (const Options& opts :
         {Options::none(), Options::io(), Options::ip(), Options::full()}) {
      EXPECT_EQ(analyze(spec, trace, opts).verdict, Verdict::Valid)
          << "seed " << seed << " mode " << opts.order_mode_name();
    }
  }
}

TEST_F(Tp0Test, BuffersPreserveFifoOrder) {
  const char* trace =
      "in  u.tconreq\n"
      "out n.cr\n"
      "in  n.cc\n"
      "out u.tconcnf\n"
      "in  u.tdtreq(1)\n"
      "in  u.tdtreq(2)\n"
      "out n.dt(2)\n"   // FIFO violation: 1 must leave first
      "out n.dt(1)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::none()).verdict,
            Verdict::Invalid);
}

TEST_F(Tp0Test, DisconnectMayDropBufferedData) {
  // §4.2: "after receiving a disconnect request, TP0 can output a
  // disconnect indication at any time, even if data remains in its
  // buffers".
  const char* trace =
      "in  u.tconreq\n"
      "out n.cr\n"
      "in  n.cc\n"
      "out u.tconcnf\n"
      "in  u.tdtreq(1)\n"
      "in  u.tdisreq\n"
      "out n.dr\n";  // dt(1) was never sent: still valid
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(Tp0Test, MutatedLastParameterIsDetectedUnderEveryMode) {
  tr::Trace good = sim::tp0_trace(spec, 3, 3, /*disconnect=*/true);
  tr::Trace bad = sim::mutate_last_output_param(good);
  for (const Options& opts : {Options::io(), Options::ip(), Options::full()}) {
    EXPECT_EQ(analyze(spec, bad, opts).verdict, Verdict::Invalid)
        << opts.order_mode_name();
  }
}

TEST_F(Tp0Test, OrderCheckingCollapsesTheInvalidTraceExplosion) {
  // The §4.2 story: invalid-trace analysis is exponential without order
  // checking and nearly linear with it. At this small depth both finish,
  // but the NR search tree must already be much larger.
  tr::Trace bad =
      sim::mutate_last_output_param(sim::tp0_trace(spec, 3, 3, true));
  DfsResult none = analyze(spec, bad, Options::none());
  DfsResult full = analyze(spec, bad, Options::full());
  ASSERT_EQ(none.verdict, Verdict::Invalid);
  ASSERT_EQ(full.verdict, Verdict::Invalid);
  EXPECT_GT(none.stats.transitions_executed,
            2 * full.stats.transitions_executed);
  // Order checking lowers the average fanout (paper: 2.6 -> 1.5).
  EXPECT_LT(full.stats.average_fanout(), none.stats.average_fanout());
}

TEST_F(Tp0Test, ValidTraceSearchGrowsRoughlyLinearly) {
  // §2.4.2 claim: under full order checking valid traces analyze in time
  // linear in the trace length (no backtracking on the data exchange).
  std::uint64_t te_small = 0, te_large = 0;
  {
    tr::Trace t = sim::tp0_trace(spec, 5, 5, false);
    DfsResult r = analyze(spec, t, Options::full());
    ASSERT_EQ(r.verdict, Verdict::Valid);
    te_small = r.stats.transitions_executed;
  }
  {
    tr::Trace t = sim::tp0_trace(spec, 20, 20, false);
    DfsResult r = analyze(spec, t, Options::full());
    ASSERT_EQ(r.verdict, Verdict::Valid);
    te_large = r.stats.transitions_executed;
  }
  // 4x the data should cost roughly 4x the transitions — allow 8x before
  // calling it superlinear.
  EXPECT_LT(te_large, 8 * te_small);
}

TEST_F(Tp0Test, HashStatesAblationSpeedsUpInvalidAnalysis) {
  // The paper's §4.2 "hash table of reached states" suggestion.
  tr::Trace bad =
      sim::mutate_last_output_param(sim::tp0_trace(spec, 3, 3, true));
  Options hashed = Options::none();
  hashed.hash_states = true;
  DfsResult plain = analyze(spec, bad, Options::none());
  DfsResult pruned = analyze(spec, bad, hashed);
  EXPECT_EQ(plain.verdict, pruned.verdict);
  EXPECT_LT(pruned.stats.transitions_executed,
            plain.stats.transitions_executed);
  EXPECT_GT(pruned.stats.pruned_by_hash, 0u);
}

TEST_F(Tp0Test, DynamicMemoryIsPartOfTheSearchState) {
  // Backtracking must restore the heap: after an invalid analysis the
  // verdict is reproducible (no state leaks between paths). Run twice and
  // compare counters exactly.
  tr::Trace bad =
      sim::mutate_last_output_param(sim::tp0_trace(spec, 2, 2, false));
  DfsResult a = analyze(spec, bad, Options::io());
  DfsResult b = analyze(spec, bad, Options::io());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.stats.transitions_executed, b.stats.transitions_executed);
  EXPECT_EQ(a.stats.restores, b.stats.restores);
}

}  // namespace
}  // namespace tango::core
