// INRES initiator integration tests: the classic conformance-testing
// protocol as a fourth realistic workload (alternating-bit data transfer
// over an unreliable medium, spontaneous retransmissions).
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

class InresTest : public ::testing::Test {
 protected:
  est::Spec spec = est::compile_spec(specs::inres());
};

TEST_F(InresTest, ConnectionEstablishment) {
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(InresTest, CrRetransmissionBeforeCc) {
  // The medium lost the first CR; the initiator spontaneously repeats it.
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "out m.cr\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict, Verdict::Valid);
}

TEST_F(InresTest, AlternatingBitDataTransfer) {
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n"
      "in  u.idatreq(10)\n"
      "out m.dt(1, 10)\n"   // INRES numbers the first DT with 1
      "in  m.ak(1)\n"
      "in  u.idatreq(11)\n"
      "out m.dt(0, 11)\n"   // the bit alternates
      "in  m.ak(0)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(InresTest, WrongAckTriggersImmediateResend) {
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n"
      "in  u.idatreq(10)\n"
      "out m.dt(1, 10)\n"
      "in  m.ak(0)\n"       // stale ack
      "out m.dt(1, 10)\n"   // wrong_ak resends
      "in  m.ak(1)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict, Verdict::Valid);
}

TEST_F(InresTest, SequenceBitViolationDetected) {
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n"
      "in  u.idatreq(10)\n"
      "out m.dt(0, 10)\n";  // must be 1 on the first DT
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict,
            Verdict::Invalid);
}

TEST_F(InresTest, PayloadCorruptionDetected) {
  const char* trace =
      "in  u.iconreq\n"
      "out m.cr\n"
      "in  m.cc\n"
      "out u.iconconf\n"
      "in  u.idatreq(10)\n"
      "out m.dt(1, 99)\n";  // buffer held 10
  DfsResult r = analyze_text(spec, trace, Options::io());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
  EXPECT_NE(r.note.find("parameter"), std::string::npos);
}

TEST_F(InresTest, DisconnectFromAnyState) {
  for (const char* prefix : {
           "in m.dr\nout u.idisind\n",
           "in u.iconreq\nout m.cr\nin m.dr\nout u.idisind\n",
           "in u.iconreq\nout m.cr\nin m.cc\nout u.iconconf\nin m.dr\n"
           "out u.idisind\n",
       }) {
    EXPECT_EQ(analyze_text(spec, prefix, Options::io()).verdict,
              Verdict::Valid)
        << prefix;
  }
}

TEST_F(InresTest, OnlineMonitoringOfRetransmissions) {
  tr::MemoryFeed feed(spec);
  OnlineConfig config;
  config.options = Options::io();
  OnlineAnalyzer analyzer(spec, feed, config);
  for (const char* line :
       {"in u.iconreq", "out m.cr", "out m.cr", "in m.cc", "out u.iconconf",
        "in u.idatreq(3)", "out m.dt(1, 3)", "out m.dt(1, 3)",
        "in m.ak(1)"}) {
    feed.push_line(line);
    EXPECT_NE(analyzer.step_round(1 << 14), OnlineStatus::Invalid) << line;
  }
  feed.push_eof();
  EXPECT_EQ(analyzer.step_round(1 << 16), OnlineStatus::Valid);
}

TEST_F(InresTest, PgavPruningTradesMemoryForSoundness) {
  // Footnote 2 of §3.1.2: pruning non-PGAV nodes saves memory but can
  // reject a valid trace. Construct the pathological case: after the first
  // two events a PGAV branch exists, but the real continuation runs
  // through a non-AV node.
  est::Spec two_way = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: x; y; by B: p; q;
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  state z, w1, w2;
  initialize to z begin end;
  trans
    from z to w1 when P.x name t1: begin output P.p; end;
    from z to w2 when P.x name t2: begin end;
    from w2 to w2 when Q.y name t3: begin output P.p; output P.q; end;
    from w1 to w1 when Q.y name t4: begin end;
end;
end.
)");
  auto run = [&](bool prune) {
    tr::MemoryFeed feed(two_way);
    OnlineConfig config;
    config.options = Options::none();
    config.options.prune_on_pgav = prune;
    OnlineAnalyzer analyzer(two_way, feed, config);
    feed.push_line("in p.x");
    feed.push_line("out p.p");
    analyzer.step_round(1 << 14);  // quiesce: the t1 branch is PGAV,
                                   // the t2 branch is PG but not AV
    feed.push_line("in q.y");
    feed.push_line("out p.q");  // only t2;t3 can also produce the q
    feed.push_eof();
    return analyzer.run();
  };
  // The full solution is t2;t3 — a continuation of the branch that was NOT
  // all-verified at the intermediate quiescence point.
  EXPECT_EQ(run(false), OnlineStatus::Valid);
  // With footnote-2 pruning the t2 branch was dropped: invalid verdict on
  // a valid trace, exactly the risk the paper states.
  EXPECT_EQ(run(true), OnlineStatus::Invalid);
}

}  // namespace
}  // namespace tango::core
