// Property-style parameterized sweeps over specs × seeds × modes:
//  P1  every simulator-produced trace is accepted by the analyzer;
//  P2  editing an output parameter of a valid trace makes it invalid;
//  P3  every order-checking mode agrees on fully-observed valid traces;
//  P4  the on-line analyzer agrees with the batch analyzer once eof is in;
//  P5  analysis is deterministic (identical counters across runs).
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

struct Params {
  const char* spec_name;
  std::uint32_t seed;
  int size;
};

std::ostream& operator<<(std::ostream& os, const Params& p) {
  return os << p.spec_name << "/seed" << p.seed << "/n" << p.size;
}

tr::Trace make_trace(const est::Spec& spec, const Params& p) {
  const std::string_view name = p.spec_name;
  if (name == "tp0") {
    return sim::tp0_trace(spec, p.size, p.size, /*disconnect=*/true, p.seed);
  }
  if (name == "inres") return sim::inres_trace(spec, p.size, p.seed);
  return sim::lapd_trace(spec, p.size, p.seed);
}

class TraceProperty : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    spec_ = std::make_unique<est::Spec>(
        est::compile_spec(specs::builtin_spec(GetParam().spec_name)));
    trace_ = std::make_unique<tr::Trace>(make_trace(*spec_, GetParam()));
  }

  std::unique_ptr<est::Spec> spec_;
  std::unique_ptr<tr::Trace> trace_;
};

TEST_P(TraceProperty, SimulatedTracesAreValidUnderEveryMode) {
  for (const Options& opts :
       {Options::none(), Options::io(), Options::ip(), Options::full()}) {
    DfsResult r = analyze(*spec_, *trace_, opts);
    EXPECT_EQ(r.verdict, Verdict::Valid)
        << GetParam() << " mode=" << opts.order_mode_name()
        << " note=" << r.note;
  }
}

TEST_P(TraceProperty, MutatedTracesAreInvalid) {
  tr::Trace bad = sim::mutate_last_output_param(*trace_);
  DfsResult r = analyze(*spec_, bad, Options::full());
  EXPECT_EQ(r.verdict, Verdict::Invalid) << GetParam();
}

TEST_P(TraceProperty, OrderModesAgreeOnFullyObservedTraces) {
  // On consumption-recorded traces every mode must reach the same verdict.
  // (Order checking usually shrinks the search, but on a VALID trace an
  // unchecked greedy descent can get lucky, so no TE monotonicity is
  // asserted here — the search-size claims are benchmarked on Figure 3/4
  // workloads instead.)
  DfsResult none = analyze(*spec_, *trace_, Options::none());
  DfsResult full = analyze(*spec_, *trace_, Options::full());
  EXPECT_EQ(none.verdict, Verdict::Valid) << GetParam();
  EXPECT_EQ(full.verdict, Verdict::Valid) << GetParam();
}

TEST_P(TraceProperty, OnlineAgreesWithBatch) {
  // Feed the full trace through the on-line analyzer; with eof it must
  // reach the batch verdict (valid here).
  tr::MemoryFeed feed(*spec_);
  for (const tr::TraceEvent& e : trace_->events()) feed.push(e);
  feed.push_eof();
  OnlineConfig config;
  config.options = Options::io();
  OnlineAnalyzer online(*spec_, feed, config);
  EXPECT_EQ(online.run(1u << 20, 4), OnlineStatus::Valid) << GetParam();
}

TEST_P(TraceProperty, AnalysisIsDeterministic) {
  DfsResult a = analyze(*spec_, *trace_, Options::io());
  DfsResult b = analyze(*spec_, *trace_, Options::io());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.stats.transitions_executed, b.stats.transitions_executed);
  EXPECT_EQ(a.stats.generates, b.stats.generates);
  EXPECT_EQ(a.stats.restores, b.stats.restores);
  EXPECT_EQ(a.stats.saves, b.stats.saves);
  EXPECT_EQ(a.solution, b.solution);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceProperty,
    ::testing::Values(Params{"tp0", 1, 2}, Params{"tp0", 2, 3},
                      Params{"tp0", 3, 5}, Params{"lapd", 1, 2},
                      Params{"lapd", 2, 4}, Params{"lapd", 3, 6},
                      Params{"lapd", 4, 9}, Params{"inres", 1, 2},
                      Params{"inres", 2, 4}, Params{"inres", 5, 3}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::string(info.param.spec_name) + "_s" +
             std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.size);
    });

// --- truncation property: every prefix of a valid trace is "valid so far"
// on-line (PGAV), though not necessarily batch-valid ------------------------

class PrefixProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrefixProperty, PrefixesOfValidTracesNeverConcludeInvalid) {
  est::Spec spec = est::compile_spec(specs::tp0());
  tr::Trace full = sim::tp0_trace(spec, 3, 3, false);
  const auto keep = static_cast<std::size_t>(GetParam());
  tr::MemoryFeed feed(spec);
  for (std::size_t i = 0; i < keep && i < full.events().size(); ++i) {
    feed.push(full.events()[i]);
  }
  OnlineConfig config;
  config.options = Options::io();
  OnlineAnalyzer online(spec, feed, config);
  OnlineStatus s = online.run(1u << 18, 3);
  // A prefix may cut between an input and the output it causes, in which
  // case no PGAV node exists (the paper's honest "maybe", §3.1.2) — but it
  // must never be conclusively invalid.
  EXPECT_NE(s, OnlineStatus::Invalid) << "prefix length " << keep;
  EXPECT_FALSE(online.conclusive()) << "prefix length " << keep;
  // Delivering the rest of the trace and the eof marker resolves it.
  for (std::size_t i = keep; i < full.events().size(); ++i) {
    feed.push(full.events()[i]);
  }
  feed.push_eof();
  EXPECT_EQ(online.run(1u << 20, 4), OnlineStatus::Valid)
      << "prefix length " << keep;
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 8));

}  // namespace
}  // namespace tango::core
