// End-to-end analysis with STRUCTURED interaction parameters (records,
// arrays, enums, chars) — interpreter-only territory (generated tools
// reject non-scalar parameters) exercising deep-equality output matching,
// field-wise construction and the trace reader's nested value syntax.
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

est::Spec kitchen_sink() {
  return est::compile_spec(R"(
specification sink;

channel CH(A, B);
  by A:
    put(p: Pt; tag: char);
    bulk(xs: Vec);
    paint(c: Color);
  by B:
    echo(p: Pt; tag: char);
    summed(total: integer);
    next(c: Color);

module M systemprocess;
  ip P: CH(B);
end;

body MB for M;

type
  Pt = record x, y: integer; end;
  Vec = array [1 .. 3] of integer;
  Color = (red, green, blue);

var
  last: Pt;

state z;

initialize to z begin last.x := 0; last.y := 0; end;

trans

from z to z when P.put name t_put:
begin
  last := p;
  last.x := last.x + 1;
  output P.echo(last, tag);
end;

from z to z when P.bulk name t_bulk:
var i, s: integer;
begin
  s := 0;
  for i := 1 to 3 do s := s + xs[i];
  output P.summed(s);
end;

from z to z when P.paint name t_paint:
begin
  if c = blue then
    output P.next(red)
  else
    output P.next(succ(c));
end;

end;

end.
)");
}

TEST(StructuredParams, RecordParameterFlowsThrough) {
  est::Spec spec = kitchen_sink();
  EXPECT_EQ(analyze_text(spec,
                         "in  p.put((3, 4), 'k')\n"
                         "out p.echo((4, 4), 'k')\n",
                         Options::io())
                .verdict,
            Verdict::Valid);
  // Wrong field value in the echoed record.
  DfsResult bad = analyze_text(spec,
                               "in  p.put((3, 4), 'k')\n"
                               "out p.echo((3, 4), 'k')\n",
                               Options::io());
  EXPECT_EQ(bad.verdict, Verdict::Invalid);
  EXPECT_NE(bad.note.find("parameter"), std::string::npos);
  // Wrong char tag.
  EXPECT_EQ(analyze_text(spec,
                         "in  p.put((3, 4), 'k')\n"
                         "out p.echo((4, 4), 'q')\n",
                         Options::io())
                .verdict,
            Verdict::Invalid);
}

TEST(StructuredParams, ArrayParameterIsFolded) {
  est::Spec spec = kitchen_sink();
  EXPECT_EQ(analyze_text(spec,
                         "in  p.bulk([10, 20, 12])\n"
                         "out p.summed(42)\n",
                         Options::io())
                .verdict,
            Verdict::Valid);
  EXPECT_EQ(analyze_text(spec,
                         "in  p.bulk([10, 20, 12])\n"
                         "out p.summed(43)\n",
                         Options::io())
                .verdict,
            Verdict::Invalid);
}

TEST(StructuredParams, EnumCycling) {
  est::Spec spec = kitchen_sink();
  EXPECT_EQ(analyze_text(spec,
                         "in  p.paint(red)\nout p.next(green)\n"
                         "in  p.paint(green)\nout p.next(blue)\n"
                         "in  p.paint(blue)\nout p.next(red)\n",
                         Options::io())
                .verdict,
            Verdict::Valid);
  EXPECT_EQ(analyze_text(spec, "in p.paint(red)\nout p.next(blue)\n",
                         Options::io())
                .verdict,
            Verdict::Invalid);
}

TEST(StructuredParams, UndefinedFieldsMatchInPartialMode) {
  est::Spec spec = kitchen_sink();
  Options partial = Options::io();
  partial.partial = true;
  // The monitor could not decode the record's y field.
  const char* trace =
      "in  p.put((3, _), 'k')\n"
      "out p.echo((4, _), 'k')\n";
  EXPECT_EQ(analyze_text(spec, trace, partial).verdict, Verdict::Valid);
  // Strict mode refuses to treat the undefined output field as a match —
  // the produced y is the (undefined) input y, and strict mode faults on
  // emitting an undefined parameter, killing the only path.
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict,
            Verdict::Invalid);
}

TEST(StructuredParams, RecordStateIsPartOfBacktracking) {
  // Two puts: the analyzer must restore `last` between attempts; wrong
  // expected echo on the second put must not corrupt the first's state.
  est::Spec spec = kitchen_sink();
  EXPECT_EQ(analyze_text(spec,
                         "in  p.put((1, 1), 'a')\n"
                         "out p.echo((2, 1), 'a')\n"
                         "in  p.put((5, 6), 'b')\n"
                         "out p.echo((6, 6), 'b')\n",
                         Options::io())
                .verdict,
            Verdict::Valid);
}

}  // namespace
}  // namespace tango::core
