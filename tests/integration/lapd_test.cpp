// LAPD (Q.921 subset) integration tests mirroring the paper's §4.1
// experiment: traces that differ in the number of user data packets,
// analyzed under the four order-checking modes.
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

class LapdTest : public ::testing::Test {
 protected:
  est::Spec spec = est::compile_spec(specs::lapd());
};

TEST_F(LapdTest, LinkEstablishmentAndRelease) {
  const char* trace =
      "in  u.dl_establish_req\n"
      "out l.sabme\n"
      "in  l.ua\n"
      "out u.dl_establish_cnf\n"
      "in  u.dl_release_req\n"
      "out l.disc\n"
      "in  l.ua\n"
      "out u.dl_release_cnf\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(LapdTest, PassiveEstablishment) {
  const char* trace =
      "in  l.sabme\n"
      "out l.ua\n"
      "out u.dl_establish_ind\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(LapdTest, DataTransferWithSequenceNumbers) {
  const char* trace =
      "in  u.dl_establish_req\n"
      "out l.sabme\n"
      "in  l.ua\n"
      "out u.dl_establish_cnf\n"
      "in  u.dl_data_req(42)\n"
      "out l.iframe(0, 0, 42)\n"
      "in  l.rr(1)\n"
      "in  u.dl_data_req(43)\n"
      "out l.iframe(1, 0, 43)\n"
      "in  l.rr(2)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(LapdTest, WrongSequenceNumberIsInvalid) {
  const char* trace =
      "in  u.dl_establish_req\n"
      "out l.sabme\n"
      "in  l.ua\n"
      "out u.dl_establish_cnf\n"
      "in  u.dl_data_req(42)\n"
      "out l.iframe(3, 0, 42)\n";  // N(S) must be 0 on a fresh link
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict,
            Verdict::Invalid);
}

TEST_F(LapdTest, IncomingIFrameDeliveryAndAck) {
  const char* trace =
      "in  l.sabme\n"
      "out l.ua\n"
      "out u.dl_establish_ind\n"
      "in  l.iframe(0, 0, 7)\n"
      "out u.dl_data_ind(7)\n"
      "out l.rr(1)\n"
      "in  l.iframe(1, 0, 8)\n"
      "out u.dl_data_ind(8)\n"
      "out l.rr(2)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(LapdTest, OutOfSequenceIFrameTriggersReject) {
  const char* trace =
      "in  l.sabme\n"
      "out l.ua\n"
      "out u.dl_establish_ind\n"
      "in  l.iframe(3, 0, 9)\n"  // expected N(S)=0
      "out l.rej(0)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::full()).verdict,
            Verdict::Valid);
}

TEST_F(LapdTest, RejTriggersGoBackNRetransmission) {
  const char* trace =
      "in  u.dl_establish_req\n"
      "out l.sabme\n"
      "in  l.ua\n"
      "out u.dl_establish_cnf\n"
      "in  u.dl_data_req(10)\n"
      "out l.iframe(0, 0, 10)\n"
      "in  u.dl_data_req(11)\n"
      "out l.iframe(1, 0, 11)\n"
      "in  l.rej(0)\n"
      "out l.iframe(0, 0, 10)\n"  // go-back-N: both frames again
      "out l.iframe(1, 0, 11)\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict, Verdict::Valid);
}

TEST_F(LapdTest, PeerBusyStopsTransmission) {
  const char* trace =
      "in  u.dl_establish_req\n"
      "out l.sabme\n"
      "in  l.ua\n"
      "out u.dl_establish_cnf\n"
      "in  l.rnr(0)\n"           // peer receiver not ready
      "in  u.dl_data_req(5)\n";  // enqueued but NOT transmitted
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict, Verdict::Valid);
  // A frame sent despite peer_busy is a violation.
  const std::string bad = std::string(trace) + "out l.iframe(0, 0, 5)\n";
  EXPECT_EQ(analyze_text(spec, bad, Options::io()).verdict, Verdict::Invalid);
}

TEST_F(LapdTest, GeneratedTracesValidUnderAllModes) {
  for (int di : {2, 5}) {
    tr::Trace trace = sim::lapd_trace(spec, di);
    for (const Options& opts :
         {Options::none(), Options::io(), Options::ip(), Options::full()}) {
      EXPECT_EQ(analyze(spec, trace, opts).verdict, Verdict::Valid)
          << "di=" << di << " mode=" << opts.order_mode_name();
    }
  }
}

TEST_F(LapdTest, SequenceNumbersWrapAroundMod8) {
  tr::Trace trace = sim::lapd_trace(spec, 12);  // wraps past N(S)=7
  DfsResult r = analyze(spec, trace, Options::full());
  EXPECT_EQ(r.verdict, Verdict::Valid);
}

TEST_F(LapdTest, MutatedTraceDetected) {
  tr::Trace bad = sim::mutate_last_output_param(sim::lapd_trace(spec, 4));
  EXPECT_EQ(analyze(spec, bad, Options::full()).verdict, Verdict::Invalid);
}

TEST_F(LapdTest, Figure3ShapeHolds) {
  // Two properties of the Figure 3 table: TE grows with DI, and enabling
  // relative order checking never increases the search.
  std::uint64_t prev_te_full = 0;
  for (int di : {2, 4, 8}) {
    tr::Trace trace = sim::lapd_trace(spec, di);
    DfsResult none = analyze(spec, trace, Options::none());
    DfsResult full = analyze(spec, trace, Options::full());
    ASSERT_EQ(none.verdict, Verdict::Valid);
    ASSERT_EQ(full.verdict, Verdict::Valid);
    EXPECT_LE(full.stats.transitions_executed,
              none.stats.transitions_executed);
    EXPECT_GT(full.stats.transitions_executed, prev_te_full);
    prev_te_full = full.stats.transitions_executed;
  }
}

}  // namespace
}  // namespace tango::core
