// Normal-form transformation (§5.3): leading if/case statements become
// provided alternatives; semantics on complete traces are preserved.
#include "transform/normal_form.hpp"

#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "estelle/parser.hpp"
#include "estelle/printer.hpp"
#include "estelle/spec.hpp"

namespace tango::transform {
namespace {

constexpr std::string_view kIfSpec = R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: big; small;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.d name t:
    begin
      if v > 10 then output P.big else output P.small;
    end;
end;
end.
)";

TEST(NormalForm, IfSplitsIntoTwoGuardedTransitions) {
  NormalFormResult result = to_normal_form(est::parse(kIfSpec));
  ASSERT_EQ(result.spec.bodies[0].transitions.size(), 2u);
  EXPECT_EQ(result.splits, 2);
  EXPECT_TRUE(result.residual.empty());
  const est::Transition& yes = result.spec.bodies[0].transitions[0];
  const est::Transition& no = result.spec.bodies[0].transitions[1];
  ASSERT_TRUE(yes.provided != nullptr);
  ASSERT_TRUE(no.provided != nullptr);
  EXPECT_EQ(no.provided->kind, est::ExprKind::Unary);
}

TEST(NormalForm, PreservesSemanticsOnCompleteTraces) {
  est::Spec original = est::compile_spec(kIfSpec);
  est::Spec transformed =
      est::compile_spec(normal_form_source(kIfSpec));
  for (const char* trace : {"in p.d(20)\nout p.big\n",
                            "in p.d(3)\nout p.small\n",
                            "in p.d(20)\nout p.small\n",
                            "in p.d(3)\nout p.big\n"}) {
    EXPECT_EQ(core::analyze_text(original, trace, {}).verdict,
              core::analyze_text(transformed, trace, {}).verdict)
        << trace;
  }
}

TEST(NormalForm, ExistingProvidedIsConjoined) {
  NormalFormResult result = to_normal_form(est::parse(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.d provided v > 0 name t:
    begin
      if v > 10 then output P.r;
    end;
end;
end.
)"));
  const est::Transition& yes = result.spec.bodies[0].transitions[0];
  // provided (v > 0) and (v > 10)
  ASSERT_EQ(yes.provided->kind, est::ExprKind::Binary);
  EXPECT_EQ(yes.provided->bin_op, est::BinOp::And);
}

TEST(NormalForm, CaseBecomesOneTransitionPerArm) {
  NormalFormResult result = to_normal_form(est::parse(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r1; r2; r3;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.d name t:
    begin
      case v of
        1: output P.r1;
        2, 3: output P.r2;
        otherwise output P.r3
      end;
    end;
end;
end.
)"));
  // Two labelled arms + otherwise.
  ASSERT_EQ(result.spec.bodies[0].transitions.size(), 3u);
  est::Spec compiled = est::compile_spec(est::print_spec(result.spec));
  EXPECT_EQ(core::analyze_text(compiled, "in p.d(1)\nout p.r1\n", {}).verdict,
            core::Verdict::Valid);
  EXPECT_EQ(core::analyze_text(compiled, "in p.d(3)\nout p.r2\n", {}).verdict,
            core::Verdict::Valid);
  EXPECT_EQ(core::analyze_text(compiled, "in p.d(9)\nout p.r3\n", {}).verdict,
            core::Verdict::Valid);
  EXPECT_EQ(core::analyze_text(compiled, "in p.d(9)\nout p.r1\n", {}).verdict,
            core::Verdict::Invalid);
}

TEST(NormalForm, NestedIfsSplitRepeatedly) {
  NormalFormResult result = to_normal_form(est::parse(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r1; r2; r3;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.d name t:
    begin
      if v > 10 then
        if v > 100 then output P.r1 else output P.r2
      else output P.r3;
    end;
end;
end.
)"));
  EXPECT_EQ(result.spec.bodies[0].transitions.size(), 3u);
  EXPECT_TRUE(result.residual.empty());
}

TEST(NormalForm, StatementsAfterTheConditionalAreKept) {
  est::Spec transformed = est::compile_spec(normal_form_source(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r(w: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.d name t:
    begin
      if v > 10 then x := 1 else x := 2;
      output P.r(x);
    end;
end;
end.
)"));
  EXPECT_EQ(core::analyze_text(transformed, "in p.d(20)\nout p.r(1)\n", {})
                .verdict,
            core::Verdict::Valid);
  EXPECT_EQ(core::analyze_text(transformed, "in p.d(2)\nout p.r(2)\n", {})
                .verdict,
            core::Verdict::Valid);
  EXPECT_EQ(core::analyze_text(transformed, "in p.d(2)\nout p.r(1)\n", {})
                .verdict,
            core::Verdict::Invalid);
}

TEST(NormalForm, LoopsAreReportedAsResidual) {
  NormalFormResult result = to_normal_form(est::parse(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.d name looper:
    begin
      while x < v do x := x + 1;
    end;
end;
end.
)"));
  ASSERT_EQ(result.residual.size(), 1u);
  EXPECT_EQ(result.residual[0], "looper");
}

TEST(NormalForm, UntransformedSpecsPassThrough) {
  NormalFormResult result = to_normal_form(est::parse(R"(
specification s;
channel CH(A, B); by A: m; by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans from z to z when P.m name t: begin output P.r; end;
end;
end.
)"));
  EXPECT_EQ(result.splits, 0);
  EXPECT_EQ(result.spec.bodies[0].transitions.size(), 1u);
  EXPECT_TRUE(result.residual.empty());
}

}  // namespace
}  // namespace tango::transform
