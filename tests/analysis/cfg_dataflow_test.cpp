// CFG construction and the dataflow passes (assign / intervals /
// unreachable / purity), exercised through inline specs and the seeded
// fixture files under tests/analysis/fixtures/.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"

namespace tango::analysis {
namespace {

std::string fixture(const std::string& name) {
  std::ifstream file(std::string(TANGO_ANALYSIS_FIXTURES) + "/" + name);
  EXPECT_TRUE(file.good()) << name;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

std::vector<Finding> flow(const std::string& src,
                          const DataflowOptions& opts = {}) {
  std::vector<Finding> findings =
      run_dataflow(est::compile_spec(src), opts);
  sort_findings(findings);
  return findings;
}

bool mentions(const std::vector<Finding>& findings,
              std::string_view fragment, std::string_view pass = {}) {
  for (const Finding& f : findings) {
    if (!pass.empty() && f.pass != pass) continue;
    if (f.message.find(fragment) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CFG structure
// ---------------------------------------------------------------------------

est::Spec single_transition_spec(const std::string& block_body) {
  return est::compile_spec(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var g: integer;
  state z;
  initialize to z begin g := 0; end;
  trans from z to z when P.m name t:
  var i, j: integer;
  begin
)" + block_body + R"(
  output P.o;
  end;
end;
end.
)");
}

const est::Stmt& only_block(const est::Spec& spec) {
  return *spec.body().transitions.at(0).block;
}

TEST(Cfg, StraightLineChainsEntryToExit) {
  est::Spec spec = single_transition_spec("i := 1; j := i + 1;");
  Cfg cfg = build_cfg(only_block(spec));
  // entry, i:=, j:=, output, exit
  ASSERT_EQ(cfg.nodes.size(), 5u);
  EXPECT_EQ(cfg.node(cfg.entry).kind, CfgNodeKind::Entry);
  EXPECT_EQ(cfg.node(cfg.exit).kind, CfgNodeKind::Exit);
  const std::vector<int> rpo = cfg.reverse_post_order();
  ASSERT_EQ(rpo.size(), 5u);
  EXPECT_EQ(rpo.front(), cfg.entry);
  EXPECT_EQ(rpo.back(), cfg.exit);
}

TEST(Cfg, IfProducesTrueAndFalseEdges) {
  est::Spec spec =
      single_transition_spec("i := 1; if i > 0 then j := 1 else j := 2;");
  Cfg cfg = build_cfg(only_block(spec));
  int conds = 0;
  for (const CfgNode& n : cfg.nodes) {
    if (n.kind != CfgNodeKind::CondIf) continue;
    ++conds;
    ASSERT_EQ(n.succs.size(), 2u);
    EXPECT_EQ(n.succs[0].kind, EdgeKind::True);
    EXPECT_EQ(n.succs[1].kind, EdgeKind::False);
  }
  EXPECT_EQ(conds, 1);
}

TEST(Cfg, EmptyBranchesFallThrough) {
  // `if` with a node-free then-branch: the condition must still reach the
  // join, not dangle (regression guard for the empty-block case).
  est::Spec spec =
      single_transition_spec("i := 1; if i > 0 then begin end; j := 2;");
  Cfg cfg = build_cfg(only_block(spec));
  for (const CfgNode& n : cfg.nodes) {
    if (n.kind == CfgNodeKind::CondIf) EXPECT_EQ(n.succs.size(), 2u);
  }
  // Every node except exit must have a successor.
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    if (static_cast<int>(i) == cfg.exit) continue;
    EXPECT_FALSE(cfg.nodes[i].succs.empty()) << to_string(cfg);
  }
}

TEST(Cfg, WhileLoopHasBackEdge) {
  est::Spec spec =
      single_transition_spec("i := 0; while i < 3 do i := i + 1;");
  Cfg cfg = build_cfg(only_block(spec));
  bool back_edge = false;
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    for (const CfgEdge& e : cfg.nodes[i].succs) {
      if (e.to <= static_cast<int>(i) &&
          cfg.node(e.to).kind == CfgNodeKind::CondWhile) {
        back_edge = true;
      }
    }
  }
  EXPECT_TRUE(back_edge) << to_string(cfg);
}

TEST(Cfg, RepeatFalseEdgeLoopsToBodyHead) {
  est::Spec spec =
      single_transition_spec("i := 0; repeat i := i + 1 until i >= 3;");
  Cfg cfg = build_cfg(only_block(spec));
  bool found = false;
  for (const CfgNode& n : cfg.nodes) {
    if (n.kind != CfgNodeKind::CondRepeat) continue;
    for (const CfgEdge& e : n.succs) {
      if (e.kind == EdgeKind::False) {
        EXPECT_EQ(cfg.node(e.to).kind, CfgNodeKind::Simple);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << to_string(cfg);
}

// ---------------------------------------------------------------------------
// Assign pass
// ---------------------------------------------------------------------------

TEST(Assign, FixtureUninitReadIsFlagged) {
  const std::vector<Finding> f = flow(fixture("uninit_read_bad.est"));
  EXPECT_TRUE(mentions(f, "'tmp' may be read before it is assigned",
                       "assign"));
}

TEST(Assign, FixtureInitializedReadIsClean) {
  EXPECT_TRUE(flow(fixture("uninit_read_ok.est")).empty());
}

TEST(Assign, BranchAssignedOnOnePathOnly) {
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m(k: integer); by B: o(v: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans from z to z when P.m name t:
  var x: integer;
  begin
    if k > 0 then x := k;
    output P.o(x);
  end;
end;
end.
)");
  EXPECT_TRUE(mentions(f, "'x' may be read before it is assigned"));
}

TEST(Assign, ModuleVariableNeverAssignedIsAnError) {
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o(v: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var ghost: integer;
  state z;
  initialize to z begin end;
  trans from z to z when P.m name t:
  begin output P.o(ghost); end;
end;
end.
)");
  ASSERT_TRUE(mentions(f, "'ghost' is read but never assigned"));
  for (const Finding& finding : f) {
    if (finding.message.find("ghost") != std::string::npos) {
      EXPECT_EQ(finding.severity, Severity::Error);
    }
  }
}

TEST(Assign, FunctionResultMayBeUnset) {
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var g: integer;
  function pick(n: integer): integer;
  begin
    if n > 0 then pick := n;
  end;
  state z;
  initialize to z begin g := 0; end;
  trans from z to z when P.m name t:
  begin g := pick(g); output P.o; end;
end;
end.
)");
  EXPECT_TRUE(mentions(f, "may return without assigning its result"));
}

// ---------------------------------------------------------------------------
// Interval pass
// ---------------------------------------------------------------------------

TEST(Intervals, FixtureSubrangeOverflowIsAnError) {
  const std::vector<Finding> f = flow(fixture("subrange_overflow_bad.est"));
  ASSERT_TRUE(mentions(f, "always out of range 0..7", "intervals"));
  for (const Finding& finding : f) {
    if (finding.pass == "intervals") {
      EXPECT_EQ(finding.severity, Severity::Error);
    }
  }
}

TEST(Intervals, FixtureInRangeAssignmentIsClean) {
  EXPECT_TRUE(flow(fixture("subrange_overflow_ok.est")).empty());
}

TEST(Intervals, ProvablyOutOfBoundsIndex) {
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var buf: array [0 .. 3] of integer;
  state z;
  initialize to z begin buf[0] := 0; end;
  trans from z to z when P.m name t:
  var i: integer;
  begin
    i := 5;
    buf[i] := 1;
    output P.o;
  end;
end;
end.
)");
  EXPECT_TRUE(mentions(f, "array index is always out of bounds 0..3"));
}

TEST(Intervals, ProvablyZeroDivisor) {
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var g: integer;
  state z;
  initialize to z begin g := 1; end;
  trans from z to z when P.m name t:
  var d: integer;
  begin
    d := 0;
    g := g div d;
    output P.o;
  end;
end;
end.
)");
  EXPECT_TRUE(mentions(f, "divisor is always zero"));
}

TEST(Intervals, ProvidedClauseRefinesTheEntryRange) {
  // Under `provided g = 0` the assignment g := g + 1 stays in 0..7; the
  // pass must use the guard, not the declared range, at entry.
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var g: 0 .. 7;
  state z;
  initialize to z begin g := 0; end;
  trans from z to z when P.m provided g = 7 name wrap:
  begin g := 0; output P.o; end;
  trans from z to z when P.m provided g < 7 name step:
  begin g := g + 1; end;
end;
end.
)");
  EXPECT_FALSE(mentions(f, "always out of range"));
}

// ---------------------------------------------------------------------------
// Unreachable pass
// ---------------------------------------------------------------------------

TEST(Unreachable, FixtureDeadThenBranchIsFlagged) {
  const std::vector<Finding> f = flow(fixture("unreachable_stmt.est"));
  EXPECT_TRUE(mentions(f, "statement is unreachable", "unreachable"));
}

TEST(Unreachable, LiveBranchesStaySilent) {
  const std::vector<Finding> f = flow(fixture("uninit_read_ok.est"),
                                      DataflowOptions{false, false, true,
                                                      false});
  EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------------------------
// Purity pass
// ---------------------------------------------------------------------------

TEST(Purity, FixtureImpureProvidedIsAnError) {
  const std::vector<Finding> f = flow(fixture("impure_provided_bad.est"));
  ASSERT_TRUE(
      mentions(f, "calls 'bump', which writes module variables", "purity"));
}

TEST(Purity, FixturePureProvidedIsClean) {
  EXPECT_TRUE(flow(fixture("impure_provided_ok.est")).empty());
}

TEST(Purity, TransitiveImpurityThroughCallChain) {
  // `outer` is impure only because it calls `inner`; the interprocedural
  // fixpoint must carry the effect across the edge.
  const std::vector<Finding> f = flow(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var g: integer;
  function inner(n: integer): integer;
  begin g := g + 1; inner := n; end;
  function outer(n: integer): boolean;
  begin outer := inner(n) > 0; end;
  state z;
  initialize to z begin g := 0; end;
  trans from z to z when P.m provided outer(1) name t:
  begin output P.o; end;
end;
end.
)");
  EXPECT_TRUE(mentions(f, "calls 'outer', which writes module variables"));
}

TEST(Purity, RoutineEffectsSummarizeWrites) {
  est::Spec spec = est::compile_spec(fixture("impure_provided_bad.est"));
  const std::vector<RoutineEffects> effects = compute_routine_effects(spec);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_TRUE(effects[0].writes_module);
  EXPECT_FALSE(effects[0].pure());
}

}  // namespace
}  // namespace tango::analysis
