// Transition-coverage report tests (conformance-campaign view).
#include "analysis/coverage.hpp"

#include <gtest/gtest.h>

#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::analysis {
namespace {

TEST(Coverage, WitnessPathsAccumulate) {
  est::Spec spec = est::compile_spec(specs::ack());
  std::vector<tr::Trace> traces;
  traces.push_back(
      tr::parse_trace(spec, "in a.x\nin a.x\nin b.y\nout a.ack\n"));
  traces.push_back(tr::parse_trace(spec, "in a.x\nin b.y\nout a.ack\n"));

  CoverageReport r = coverage(spec, traces, core::Options::none());
  EXPECT_EQ(r.traces_total, 2u);
  EXPECT_EQ(r.traces_valid, 2u);
  // Both traces need t2 and t3; the first also needs one t1.
  EXPECT_EQ(r.hits.at("t2"), 2u);
  EXPECT_EQ(r.hits.at("t3"), 2u);
  EXPECT_EQ(r.hits.at("t1"), 1u);
  EXPECT_TRUE(r.uncovered.empty());
  EXPECT_DOUBLE_EQ(r.ratio(), 1.0);
}

TEST(Coverage, UncoveredTransitionsListed) {
  est::Spec spec = est::compile_spec(specs::tp0());
  std::vector<tr::Trace> traces;
  traces.push_back(tr::parse_trace(spec,
                                   "in  u.tconreq\n"
                                   "out n.cr\n"
                                   "in  n.cc\n"
                                   "out u.tconcnf\n"));
  CoverageReport r = coverage(spec, traces, core::Options::full());
  EXPECT_EQ(r.traces_valid, 1u);
  EXPECT_EQ(r.hits.count("t1"), 1u);
  EXPECT_EQ(r.hits.count("t2"), 1u);
  // The data-phase transitions were never exercised.
  EXPECT_NE(std::find(r.uncovered.begin(), r.uncovered.end(), "t13"),
            r.uncovered.end());
  EXPECT_NE(std::find(r.uncovered.begin(), r.uncovered.end(), "t17"),
            r.uncovered.end());
  EXPECT_LT(r.ratio(), 1.0);
}

TEST(Coverage, InvalidTracesAreCountedButContributeNothing) {
  est::Spec spec = est::compile_spec(specs::ack());
  std::vector<tr::Trace> traces;
  traces.push_back(tr::parse_trace(spec, "out a.ack\n"));  // unproducible
  CoverageReport r = coverage(spec, traces, core::Options::none());
  EXPECT_EQ(r.traces_total, 1u);
  EXPECT_EQ(r.traces_valid, 0u);
  EXPECT_TRUE(r.hits.empty());
  ASSERT_EQ(r.invalid_notes.size(), 1u);
  EXPECT_NE(r.invalid_notes[0].find("invalid"), std::string::npos);
}

TEST(Coverage, FullLapdCampaignCoversTheDataPath) {
  est::Spec spec = est::compile_spec(specs::lapd());
  std::vector<tr::Trace> traces;
  traces.push_back(sim::lapd_trace(spec, 6));
  traces.push_back(tr::parse_trace(spec,
                                   "in  l.sabme\n"
                                   "out l.ua\n"
                                   "out u.dl_establish_ind\n"
                                   "in  l.iframe(0, 0, 1)\n"
                                   "out u.dl_data_ind(1)\n"
                                   "out l.rr(1)\n"));
  CoverageReport r = coverage(spec, traces, core::Options::io());
  EXPECT_EQ(r.traces_valid, 2u);
  EXPECT_GE(r.hits.at("t_enq"), 6u);
  EXPECT_GE(r.hits.at("t_send"), 6u);
  EXPECT_EQ(r.hits.count("passive_open"), 1u);
  // Release and error handling remain uncovered by this campaign.
  EXPECT_NE(std::find(r.uncovered.begin(), r.uncovered.end(), "rel_req"),
            r.uncovered.end());
  const std::string text = r.render();
  EXPECT_NE(text.find("NEVER COVERED"), std::string::npos);
}

}  // namespace
}  // namespace tango::analysis
