// Whole-spec invariant engine tests: fixpoint tables over the seeded-defect
// fixtures (dead-after-init transition, fixpoint-unreachable control state,
// never-emittable interaction, cross-transition subrange fault), the
// `invariants` lint pass wired through LintOptions::passes, GuardMatrix v2
// augmentation, and the debug-mode soundness campaign — analyzing every
// committed golden trace with the matrix installed drives the generate()
// assert that every concrete state satisfies its control-state invariant.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "analysis/lint.hpp"
#include "core/dfs.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(TANGO_ANALYSIS_FIXTURES) + "/" + name);
}

StateInvariants invariants_of(const est::Spec& spec) {
  return compute_state_invariants(spec, compute_routine_effects(spec));
}

int transition_index(const est::Spec& spec, const std::string& name) {
  const auto& trs = spec.body().transitions;
  for (std::size_t i = 0; i < trs.size(); ++i) {
    if (trs[i].name == name) return static_cast<int>(i);
  }
  ADD_FAILURE() << "no transition named " << name;
  return -1;
}

bool any_finding(const std::vector<Finding>& findings,
                 const std::string& needle) {
  for (const Finding& f : findings) {
    if (f.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fixpoint tables
// ---------------------------------------------------------------------------

TEST(Invariants, DeadAfterInitFixpoint) {
  est::Spec spec = est::compile_spec(fixture("dead_after_init.est"));
  const StateInvariants inv = invariants_of(spec);
  ASSERT_TRUE(inv.valid);
  const int s = spec.state_ordinal("s");
  ASSERT_GE(s, 0);
  EXPECT_TRUE(inv.is_reachable(s));
  // x only ever holds 0 or 1 at S.
  const Interval& x = inv.bound(s, 0);
  EXPECT_EQ(x.lo, 0);
  EXPECT_EQ(x.hi, 1);
  // ghost (provided x = 5) is refuted at S and therefore dead; the live
  // pair is not.
  EXPECT_TRUE(inv.is_refuted(s, transition_index(spec, "ghost")));
  EXPECT_TRUE(inv.is_dead(transition_index(spec, "ghost")));
  EXPECT_FALSE(inv.is_dead(transition_index(spec, "step")));
  EXPECT_FALSE(inv.is_dead(transition_index(spec, "back")));
}

TEST(Invariants, SemanticallyUnreachableState) {
  est::Spec spec = est::compile_spec(fixture("unreachable_state_sem.est"));
  const StateInvariants inv = invariants_of(spec);
  ASSERT_TRUE(inv.valid);
  EXPECT_TRUE(inv.is_reachable(spec.state_ordinal("s1")));
  EXPECT_FALSE(inv.is_reachable(spec.state_ordinal("s2")));
  EXPECT_TRUE(inv.is_dead(transition_index(spec, "jump")));
  EXPECT_TRUE(inv.is_dead(transition_index(spec, "spin")));
  EXPECT_FALSE(inv.is_dead(transition_index(spec, "loop")));
}

TEST(Invariants, ChannelFlowNeverSent) {
  est::Spec spec = est::compile_spec(fixture("never_sent.est"));
  const StateInvariants inv = invariants_of(spec);
  ASSERT_TRUE(inv.valid);
  const int p = spec.ip_index("p");
  ASSERT_GE(p, 0);
  const int done = spec.output_id(p, "done");
  const int err = spec.output_id(p, "err");
  ASSERT_GE(done, 0);
  ASSERT_GE(err, 0);
  // done is output by the live `ok`; err only by the dead `bad`.
  EXPECT_TRUE(inv.is_emittable(p, done));
  EXPECT_FALSE(inv.is_emittable(p, err));
  EXPECT_TRUE(inv.is_dead(transition_index(spec, "bad")));
}

// ---------------------------------------------------------------------------
// The `invariants` lint pass
// ---------------------------------------------------------------------------

LintReport lint_invariants(const est::Spec& spec) {
  LintOptions lo;
  lo.passes = "invariants";
  return lint(spec, lo);
}

TEST(Invariants, LintReportsSemanticallyDeadTransition) {
  est::Spec spec = est::compile_spec(fixture("dead_after_init.est"));
  LintReport report = lint_invariants(spec);
  EXPECT_TRUE(any_finding(report.findings, "semantically dead"));
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.pass, "invariants");
    EXPECT_EQ(f.severity, Severity::Warning);
  }
}

TEST(Invariants, LintReportsFixpointUnreachableState) {
  est::Spec spec = est::compile_spec(fixture("unreachable_state_sem.est"));
  LintReport report = lint_invariants(spec);
  EXPECT_TRUE(
      any_finding(report.findings, "unreachable in the interval fixpoint"));
  EXPECT_TRUE(any_finding(report.findings, "no source state is reachable"));
  // The syntactic `reach` pass must stay silent on this spec: the defect
  // is only visible semantically.
  LintOptions reach_only;
  reach_only.passes = "reach";
  EXPECT_TRUE(lint(spec, reach_only).findings.empty());
}

TEST(Invariants, LintReportsNeverEmittedInteraction) {
  est::Spec spec = est::compile_spec(fixture("never_sent.est"));
  LintReport report = lint_invariants(spec);
  EXPECT_TRUE(any_finding(report.findings, "can never be output"));
  // The syntactic `interactions` pass is satisfied — err has a site.
  LintOptions inter_only;
  inter_only.passes = "interactions";
  EXPECT_FALSE(
      any_finding(lint(spec, inter_only).findings, "never produced"));
}

TEST(Invariants, LintReportsCrossTransitionFault) {
  est::Spec spec = est::compile_spec(fixture("cross_state_fault.est"));
  LintReport report = lint_invariants(spec);
  EXPECT_TRUE(
      any_finding(report.findings, "provable only across transitions"));
  // The per-transition intervals pass cannot decide it (x is a plain
  // integer under declared-type entry bounds).
  LintOptions intervals_only;
  intervals_only.passes = "intervals";
  EXPECT_TRUE(lint(spec, intervals_only).findings.empty());
}

TEST(Invariants, UnknownPassNamesInvariantsInTheList) {
  est::Spec spec = est::compile_spec(fixture("dead_after_init.est"));
  LintOptions lo;
  lo.passes = "invariantz";
  try {
    (void)lint(spec, lo);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown lint pass"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("invariants"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Proof discipline
// ---------------------------------------------------------------------------

TEST(Invariants, ImpureProvidedClauseBailsWholesale) {
  est::Spec spec = est::compile_spec(fixture("impure_provided_bad.est"));
  const StateInvariants inv = invariants_of(spec);
  EXPECT_FALSE(inv.valid);
  GuardMatrix gm;
  gm.n = static_cast<int>(spec.body().transitions.size());
  augment_guard_matrix(spec, inv, gm);
  EXPECT_FALSE(gm.has_state_facts());
  EXPECT_FALSE(gm.has_never_out());
  EXPECT_FALSE(gm.has_invariants());
}

TEST(Invariants, AugmentedMatrixCarriesFacts) {
  est::Spec spec = est::compile_spec(fixture("never_sent.est"));
  const StateInvariants inv = invariants_of(spec);
  ASSERT_TRUE(inv.valid);
  GuardMatrix gm;
  gm.n = static_cast<int>(spec.body().transitions.size());
  augment_guard_matrix(spec, inv, gm);
  EXPECT_TRUE(gm.has_state_facts());
  EXPECT_TRUE(gm.has_never_out());
  EXPECT_TRUE(gm.has_invariants());
  const int p = spec.ip_index("p");
  EXPECT_TRUE(gm.never_out(p, spec.output_id(p, "err")));
  EXPECT_FALSE(gm.never_out(p, spec.output_id(p, "done")));
  const int s = spec.state_ordinal("s");
  EXPECT_TRUE(gm.state_refuted(s, transition_index(spec, "bad")));
  EXPECT_FALSE(gm.state_refuted(s, transition_index(spec, "ok")));
}

// Builtin specifications must keep analyzing cleanly with the engine on:
// no error-level findings (the fuzzer's lint gate), and a valid fixpoint
// or a clean wholesale bail — never a crash or a poisoned table.
TEST(Invariants, BuiltinSpecsLintCleanAtErrorLevel) {
  for (const char* name :
       {"ack", "ip3", "ip3prime", "abp", "inres", "tp0", "lapd"}) {
    est::Spec spec = est::compile_spec(specs::builtin_spec(name));
    LintReport report = lint_invariants(spec);
    EXPECT_FALSE(report.has_errors()) << name << ":\n" << report.render();
  }
}

// ---------------------------------------------------------------------------
// Soundness campaign: the generate() debug assert checks every concrete
// state reached during search against the invariant table. Any unsound
// interval would abort the test binary here.
// ---------------------------------------------------------------------------

TEST(Invariants, SoundnessOverGoldenTraces) {
  struct Golden {
    const char* trace;
    const char* spec;
  };
  const Golden goldens[] = {
      {"abp_valid.tr", "abp"},   {"abp_invalid.tr", "abp"},
      {"ack_paper.tr", "ack"},   {"inres_valid.tr", "inres"},
      {"tp0_valid.tr", "tp0"},   {"lapd_midstream.tr", "lapd"},
  };
  for (const Golden& g : goldens) {
    est::Spec spec = est::compile_spec(specs::builtin_spec(g.spec));
    const std::string text =
        read_file(std::string(TANGO_TRACES_DIR) + "/" + g.trace);
    for (core::Options base : {core::Options::none(), core::Options::io(),
                               core::Options::full()}) {
      base.max_transitions = 200'000;
      ASSERT_TRUE(base.invariant_prune);  // default on
      const core::DfsResult r = core::analyze_text(spec, text, base);
      (void)r;  // verdicts are pinned by prune_diff_test; here the debug
                // assert inside generate() is the oracle
    }
  }
}

}  // namespace
}  // namespace tango::analysis
