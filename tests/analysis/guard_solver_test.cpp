// Guard implication solver: skip-set proofs (duplicates, priority
// shadowing, contradictions), the runtime mutual-exclusion matrix, and the
// purity gating that keeps every entry a proof.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "analysis/guard_solver.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {
namespace {

std::string fixture(const std::string& name) {
  std::ifstream file(std::string(TANGO_ANALYSIS_FIXTURES) + "/" + name);
  EXPECT_TRUE(file.good()) << name;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

GuardAnalysis analyze(const std::string& src) {
  return analyze_guards(est::compile_spec(src));
}

int index_of(const est::Spec& spec, const std::string& name) {
  const auto& ts = spec.body().transitions;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].name == name) return static_cast<int>(i);
  }
  ADD_FAILURE() << "no transition named " << name;
  return -1;
}

bool mentions(const GuardAnalysis& ga, std::string_view fragment) {
  for (const Finding& f : ga.findings) {
    if (f.message.find(fragment) != std::string::npos) return true;
  }
  return false;
}

TEST(GuardSolver, StructuralDuplicateEntersTheSkipSet) {
  est::Spec spec = est::compile_spec(fixture("dup_transitions.est"));
  GuardAnalysis ga = analyze_guards(spec);
  EXPECT_FALSE(ga.matrix.skippable(index_of(spec, "fork_a")));
  EXPECT_TRUE(ga.matrix.skippable(index_of(spec, "fork_b")));
  EXPECT_FALSE(ga.matrix.skippable(index_of(spec, "back")));
  EXPECT_TRUE(mentions(ga, "structurally identical"));
  EXPECT_TRUE(ga.matrix.any_facts());
}

TEST(GuardSolver, ShadowedPriorityEntersTheSkipSet) {
  est::Spec spec = est::compile_spec(fixture("shadowed_priority.est"));
  GuardAnalysis ga = analyze_guards(spec);
  EXPECT_TRUE(ga.matrix.skippable(index_of(spec, "shadowed")));
  EXPECT_FALSE(ga.matrix.skippable(index_of(spec, "strong")));
  EXPECT_TRUE(mentions(ga, "can never fire"));
}

TEST(GuardSolver, DisjointGuardsFillTheMutexMatrix) {
  est::Spec spec = est::compile_spec(fixture("mutex_guards.est"));
  GuardAnalysis ga = analyze_guards(spec);
  const int opening = index_of(spec, "opening");
  const int closing = index_of(spec, "closing");
  EXPECT_TRUE(ga.matrix.mutex(opening, closing));
  EXPECT_TRUE(ga.matrix.mutex(closing, opening));
  EXPECT_TRUE(ga.matrix.pure(opening));
  EXPECT_TRUE(ga.matrix.pure(closing));
  EXPECT_FALSE(mentions(ga, "nondeterministic"));
}

TEST(GuardSolver, OverlappingGuardsAreReportedNotPruned) {
  est::Spec spec = est::compile_spec(fixture("overlap_guards.est"));
  GuardAnalysis ga = analyze_guards(spec);
  const int low = index_of(spec, "low");
  const int high = index_of(spec, "high");
  EXPECT_FALSE(ga.matrix.mutex(low, high));
  EXPECT_FALSE(ga.matrix.skippable(low));
  EXPECT_FALSE(ga.matrix.skippable(high));
  EXPECT_TRUE(mentions(ga, "nondeterministic choice"));
}

TEST(GuardSolver, ContradictionIsAnErrorAndSkipped) {
  GuardAnalysis ga = analyze(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.m provided (x > 4) and (x < 3) name never:
    begin end;
    from z to z when P.m name always: begin output P.o; end;
end;
end.
)");
  EXPECT_TRUE(mentions(ga, "can never be true"));
  ASSERT_EQ(ga.matrix.n, 2);
  EXPECT_TRUE(ga.matrix.skippable(0));
  EXPECT_FALSE(ga.matrix.skippable(1));
}

TEST(GuardSolver, DeclaredSubrangeBoundsProveExclusion) {
  // flag: 0..1. `flag = 0` and `flag <> 0` are disjoint only through the
  // declared bounds (<> 0 squeezes to [1,1]).
  GuardAnalysis ga = analyze(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var flag: 0 .. 1;
  state z;
  initialize to z begin flag := 0; end;
  trans
    from z to z when P.m provided flag = 0 name off:
    begin flag := 1; end;
    from z to z when P.m provided flag <> 0 name on:
    begin flag := 0; output P.o; end;
end;
end.
)");
  ASSERT_EQ(ga.matrix.n, 2);
  EXPECT_TRUE(ga.matrix.mutex(0, 1));
  EXPECT_FALSE(mentions(ga, "nondeterministic"));
}

TEST(GuardSolver, VarParamWriteRevokesModuleBoundTrust) {
  // The solver seeds declared subrange bounds only for slots never written
  // through a var parameter (the write is range-checked against the
  // PARAMETER's type, so the solver deliberately refuses to reason about
  // the slot's contents once a routine has had reference access to it).
  const char* const tmpl = R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  type small = 0 .. 7;
  var w: small;
  procedure touch(var n: small);
  begin n := 0; end;
  state z;
  initialize to z begin w := 0; end;
  trans
    from z to z when P.m provided w = 8 name beyond:
    begin output P.o; end;
    from z to z when P.m provided w < 8 name within:
    begin %BLOCK% end;
end;
end.
)";
  const auto with_block = [&](const std::string& block) {
    std::string src = tmpl;
    src.replace(src.find("%BLOCK%"), 7, block);
    return analyze(src);
  };
  // Bounds trusted: [0,7] makes `w = 8` a provable contradiction.
  GuardAnalysis trusted = with_block("w := 0;");
  EXPECT_TRUE(mentions(trusted, "can never be true"));
  // `touch(w)` passes w by reference to a writing routine — trust revoked,
  // so the same guard is no longer provably false.
  GuardAnalysis revoked = with_block("touch(w);");
  EXPECT_FALSE(mentions(revoked, "can never be true"));
}

TEST(GuardSolver, ImpureGuardNeverServesAsSkipEvidence) {
  GuardAnalysis ga = analyze(fixture("impure_provided_bad.est"));
  ASSERT_EQ(ga.matrix.n, 1);
  EXPECT_FALSE(ga.matrix.pure(0));
}

TEST(GuardSolver, CleanPairProducesNoFacts) {
  est::Spec spec = est::compile_spec(fixture("uninit_read_ok.est"));
  GuardAnalysis ga = analyze_guards(spec);
  EXPECT_FALSE(ga.matrix.any_facts());
}

}  // namespace
}  // namespace tango::analysis
