// Golden lint outputs for every spec under specs/: the text and SARIF
// renderings are byte-compared against checked-in files, so any change to
// finding wording, ordering, severity mapping, or SARIF structure shows up
// as a reviewable golden diff. CI runs the same comparison through the CLI
// (`tango lint --format=sarif specs/<name>.est`).
//
// To regenerate after an intentional change, from the repo root:
//   for s in specs/*.est; do n=$(basename $s .est);
//     build/src/tango lint $s > tests/analysis/golden/$n.lint.txt;
//     build/src/tango lint --format=sarif $s > tests/analysis/golden/$n.sarif.json;
//   done
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

class LintGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGolden, TextMatchesGolden) {
  const std::string name = GetParam();
  est::Spec spec =
      est::compile_spec(read_file(std::string(TANGO_SPECS_DIR) + "/" + name +
                                  ".est"));
  LintOptions lo;
  lo.source_name = "specs/" + name + ".est";
  const LintReport report = lint(spec, lo);
  EXPECT_EQ(report.render(),
            read_file(std::string(TANGO_GOLDEN_DIR) + "/" + name +
                      ".lint.txt"));
}

TEST_P(LintGolden, SarifMatchesGolden) {
  const std::string name = GetParam();
  est::Spec spec =
      est::compile_spec(read_file(std::string(TANGO_SPECS_DIR) + "/" + name +
                                  ".est"));
  LintOptions lo;
  lo.source_name = "specs/" + name + ".est";
  const LintReport report = lint(spec, lo);
  EXPECT_EQ(report.render_sarif("specs/" + name + ".est"),
            read_file(std::string(TANGO_GOLDEN_DIR) + "/" + name +
                      ".sarif.json"));
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, LintGolden,
                         ::testing::Values("abp", "ack", "inres", "ip3",
                                           "ip3prime", "lapd", "tp0"));

}  // namespace
}  // namespace tango::analysis
