// Differential test for guard-solver pruning: analyses with static_prune
// on and off must be verdict- AND witness-identical — the matrix only ever
// removes work, never behavior. On specs the solver has facts about, the
// pruned run must also demonstrably do less work (static_skips > 0, and
// strictly fewer TE/GE when the search exhausts).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/dfs.hpp"
#include "estelle/spec.hpp"
#include "fuzz/fuzz.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(TANGO_ANALYSIS_FIXTURES) + "/" + name);
}

struct Pair {
  core::DfsResult pruned;
  core::DfsResult plain;
};

Pair both(const est::Spec& spec, const std::string& trace_text,
          core::Options base) {
  Pair p;
  base.static_prune = true;
  p.pruned = core::analyze_text(spec, trace_text, base);
  base.static_prune = false;
  p.plain = core::analyze_text(spec, trace_text, base);
  EXPECT_EQ(p.plain.stats.static_skips, 0u);
  return p;
}

void expect_identical(const Pair& p) {
  EXPECT_EQ(p.pruned.verdict, p.plain.verdict);
  EXPECT_EQ(p.pruned.solution, p.plain.solution);
}

// Every stored golden trace, replayed with pruning toggled, under both the
// unconstrained and the fully-ordered presets.
void golden(const std::string& trace_file, const std::string& spec_name,
            core::Verdict expected, bool initial_state_search = false) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(spec_name));
  const std::string text =
      read_file(std::string(TANGO_TRACES_DIR) + "/" + trace_file);
  for (core::Options base : {core::Options::none(), core::Options::io()}) {
    base.max_transitions = 200'000;
    base.initial_state_search = initial_state_search;
    Pair p = both(spec, text, base);
    expect_identical(p);
    EXPECT_EQ(p.pruned.verdict, expected) << trace_file;
  }
}

TEST(PruneDiff, AbpValid) {
  golden("abp_valid.tr", "abp", core::Verdict::Valid);
}

TEST(PruneDiff, AbpInvalid) {
  golden("abp_invalid.tr", "abp", core::Verdict::Invalid);
}

TEST(PruneDiff, AckPaper) {
  golden("ack_paper.tr", "ack", core::Verdict::Valid);
}

TEST(PruneDiff, InresValid) {
  golden("inres_valid.tr", "inres", core::Verdict::Valid);
}

TEST(PruneDiff, Tp0Valid) {
  golden("tp0_valid.tr", "tp0", core::Verdict::Valid);
}

TEST(PruneDiff, LapdMidstream) {
  golden("lapd_midstream.tr", "lapd", core::Verdict::Valid,
         /*initial_state_search=*/true);
}

// Structural duplicates: pruning skips fork_b at every S1 node. On a valid
// trace the witness is identical (both searches pick fork_a first); on an
// invalid trace the exhaustive search visits every fork combination
// unpruned but a single path pruned — strictly less work, same verdict.
TEST(PruneDiff, DuplicateTransitionsValidTraceSameWitness) {
  est::Spec spec = est::compile_spec(fixture("dup_transitions.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

TEST(PruneDiff, DuplicateTransitionsExhaustionDoesStrictlyLessWork) {
  est::Spec spec = est::compile_spec(fixture("dup_transitions.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "in p.go\n"
                "in p.go\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Invalid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
  EXPECT_LT(p.pruned.stats.transitions_executed,
            p.plain.stats.transitions_executed);
  EXPECT_LT(p.pruned.stats.generates, p.plain.stats.generates);
}

// Mutual exclusion at runtime: once `opening` (x = 0) evaluates true,
// `closing` (x = 1) is skipped without evaluation.
TEST(PruneDiff, MutexMatrixSkipsDoomedCandidates) {
  est::Spec spec = est::compile_spec(fixture("mutex_guards.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

// Priority shadowing: `shadowed` can never fire, so skipping it changes
// nothing observable.
TEST(PruneDiff, ShadowedTransitionSkipPreservesVerdict) {
  est::Spec spec = est::compile_spec(fixture("shadowed_priority.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

// ---------------------------------------------------------------------------
// Invariant-prune differential: three levels — no static facts at all,
// pairwise guard-solver facts only, and full (pairwise + whole-spec
// invariant facts). All three must agree on verdict and witness; the full
// level must demonstrably do less work where only it has facts.
// ---------------------------------------------------------------------------

struct Triple {
  core::DfsResult off;
  core::DfsResult pairwise;
  core::DfsResult full;
};

Triple all_levels(const est::Spec& spec, const std::string& trace_text,
                  core::Options base) {
  Triple t;
  base.static_prune = false;
  t.off = core::analyze_text(spec, trace_text, base);
  EXPECT_EQ(t.off.stats.static_skips, 0u);
  base.static_prune = true;
  base.invariant_prune = false;
  t.pairwise = core::analyze_text(spec, trace_text, base);
  base.invariant_prune = true;
  t.full = core::analyze_text(spec, trace_text, base);
  return t;
}

void expect_identical(const Triple& t) {
  EXPECT_EQ(t.off.verdict, t.pairwise.verdict);
  EXPECT_EQ(t.off.verdict, t.full.verdict);
  EXPECT_EQ(t.off.solution, t.pairwise.solution);
  EXPECT_EQ(t.off.solution, t.full.solution);
}

// Every stored golden trace at every pruning level, under both presets.
TEST(InvariantPruneDiff, GoldenTracesAgreeAcrossAllLevels) {
  struct Golden {
    const char* trace;
    const char* spec;
    bool initial_state_search;
  };
  const Golden goldens[] = {
      {"abp_valid.tr", "abp", false},   {"abp_invalid.tr", "abp", false},
      {"ack_paper.tr", "ack", false},   {"inres_valid.tr", "inres", false},
      {"tp0_valid.tr", "tp0", false},   {"lapd_midstream.tr", "lapd", true},
  };
  for (const Golden& g : goldens) {
    est::Spec spec = est::compile_spec(specs::builtin_spec(g.spec));
    const std::string text =
        read_file(std::string(TANGO_TRACES_DIR) + "/" + g.trace);
    for (core::Options base :
         {core::Options::none(), core::Options::io()}) {
      base.max_transitions = 200'000;
      base.initial_state_search = g.initial_state_search;
      Triple t = all_levels(spec, text, base);
      expect_identical(t);
    }
  }
}

// `ghost` is declared first and its guard (x = 5) is only refutable from
// the state invariant: the pairwise mutex can't skip it (no guard has
// held yet when it is considered), so the full level must record strictly
// more static skips while verdict and witness stay identical.
TEST(InvariantPruneDiff, StateRefutedCandidateSkippedBeforeEvaluation) {
  est::Spec spec = est::compile_spec(fixture("dead_after_init.est"));
  Triple t = all_levels(spec,
                        "in p.go\n"
                        "in p.go\n"
                        "out p.done\n"
                        "eof\n",
                        core::Options::none());
  expect_identical(t);
  EXPECT_EQ(t.full.verdict, core::Verdict::Valid);
  EXPECT_GT(t.full.stats.static_skips, t.pairwise.stats.static_skips);
}

// The only transition that could output err is invariant-dead, so a
// complete trace still expecting `out p.err` dooms the whole subtree: the
// full level cuts at the root (strictly fewer TE) while all levels agree
// the trace is invalid.
TEST(InvariantPruneDiff, DoomedOutputCutsSubtree) {
  est::Spec spec = est::compile_spec(fixture("never_sent.est"));
  Triple t = all_levels(spec,
                        "in p.go\n"
                        "in p.go\n"
                        "out p.err\n"
                        "eof\n",
                        core::Options::none());
  EXPECT_EQ(t.off.verdict, core::Verdict::Invalid);
  EXPECT_EQ(t.pairwise.verdict, core::Verdict::Invalid);
  EXPECT_EQ(t.full.verdict, core::Verdict::Invalid);
  EXPECT_GT(t.full.stats.static_skips, 0u);
  EXPECT_LT(t.full.stats.transitions_executed,
            t.off.stats.transitions_executed);
}

// Cross-transition provable fault: the invariant facts carry bounds but
// the seeded fault surfaces at run time either way — all levels must agree
// on the verdict for a trace that drives through it.
TEST(InvariantPruneDiff, CrossStateFaultVerdictParity) {
  est::Spec spec = est::compile_spec(fixture("cross_state_fault.est"));
  Triple t = all_levels(spec,
                        "in p.go\n"
                        "out p.done\n"
                        "eof\n",
                        core::Options::none());
  expect_identical(t);
}

// Same-seed fuzz campaigns with pruning toggled: both must be clean (every
// oracle invariant holds either way) and cover the same trace variants.
TEST(PruneDiff, SameSeedFuzzCampaignsAgree) {
  fuzz::FuzzConfig config;
  config.seed = 20260805;
  config.iterations = 3;
  config.specs = {"ack"};
  config.static_prune = true;
  fuzz::FuzzReport pruned = fuzz::run_fuzz(config);
  config.static_prune = false;
  fuzz::FuzzReport plain = fuzz::run_fuzz(config);
  EXPECT_TRUE(pruned.clean()) << pruned.summary();
  EXPECT_TRUE(plain.clean()) << plain.summary();
  EXPECT_EQ(pruned.traces_analyzed, plain.traces_analyzed);
  EXPECT_EQ(pruned.verdicts, plain.verdicts);
  EXPECT_EQ(pruned.oracle_checks, plain.oracle_checks);
}

}  // namespace
}  // namespace tango
