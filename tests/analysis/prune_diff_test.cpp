// Differential test for guard-solver pruning: analyses with static_prune
// on and off must be verdict- AND witness-identical — the matrix only ever
// removes work, never behavior. On specs the solver has facts about, the
// pruned run must also demonstrably do less work (static_skips > 0, and
// strictly fewer TE/GE when the search exhausts).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/dfs.hpp"
#include "estelle/spec.hpp"
#include "fuzz/fuzz.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(TANGO_ANALYSIS_FIXTURES) + "/" + name);
}

struct Pair {
  core::DfsResult pruned;
  core::DfsResult plain;
};

Pair both(const est::Spec& spec, const std::string& trace_text,
          core::Options base) {
  Pair p;
  base.static_prune = true;
  p.pruned = core::analyze_text(spec, trace_text, base);
  base.static_prune = false;
  p.plain = core::analyze_text(spec, trace_text, base);
  EXPECT_EQ(p.plain.stats.static_skips, 0u);
  return p;
}

void expect_identical(const Pair& p) {
  EXPECT_EQ(p.pruned.verdict, p.plain.verdict);
  EXPECT_EQ(p.pruned.solution, p.plain.solution);
}

// Every stored golden trace, replayed with pruning toggled, under both the
// unconstrained and the fully-ordered presets.
void golden(const std::string& trace_file, const std::string& spec_name,
            core::Verdict expected, bool initial_state_search = false) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(spec_name));
  const std::string text =
      read_file(std::string(TANGO_TRACES_DIR) + "/" + trace_file);
  for (core::Options base : {core::Options::none(), core::Options::io()}) {
    base.max_transitions = 200'000;
    base.initial_state_search = initial_state_search;
    Pair p = both(spec, text, base);
    expect_identical(p);
    EXPECT_EQ(p.pruned.verdict, expected) << trace_file;
  }
}

TEST(PruneDiff, AbpValid) {
  golden("abp_valid.tr", "abp", core::Verdict::Valid);
}

TEST(PruneDiff, AbpInvalid) {
  golden("abp_invalid.tr", "abp", core::Verdict::Invalid);
}

TEST(PruneDiff, AckPaper) {
  golden("ack_paper.tr", "ack", core::Verdict::Valid);
}

TEST(PruneDiff, InresValid) {
  golden("inres_valid.tr", "inres", core::Verdict::Valid);
}

TEST(PruneDiff, Tp0Valid) {
  golden("tp0_valid.tr", "tp0", core::Verdict::Valid);
}

TEST(PruneDiff, LapdMidstream) {
  golden("lapd_midstream.tr", "lapd", core::Verdict::Valid,
         /*initial_state_search=*/true);
}

// Structural duplicates: pruning skips fork_b at every S1 node. On a valid
// trace the witness is identical (both searches pick fork_a first); on an
// invalid trace the exhaustive search visits every fork combination
// unpruned but a single path pruned — strictly less work, same verdict.
TEST(PruneDiff, DuplicateTransitionsValidTraceSameWitness) {
  est::Spec spec = est::compile_spec(fixture("dup_transitions.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

TEST(PruneDiff, DuplicateTransitionsExhaustionDoesStrictlyLessWork) {
  est::Spec spec = est::compile_spec(fixture("dup_transitions.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "in p.go\n"
                "in p.go\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Invalid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
  EXPECT_LT(p.pruned.stats.transitions_executed,
            p.plain.stats.transitions_executed);
  EXPECT_LT(p.pruned.stats.generates, p.plain.stats.generates);
}

// Mutual exclusion at runtime: once `opening` (x = 0) evaluates true,
// `closing` (x = 1) is skipped without evaluation.
TEST(PruneDiff, MutexMatrixSkipsDoomedCandidates) {
  est::Spec spec = est::compile_spec(fixture("mutex_guards.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "out p.done\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

// Priority shadowing: `shadowed` can never fire, so skipping it changes
// nothing observable.
TEST(PruneDiff, ShadowedTransitionSkipPreservesVerdict) {
  est::Spec spec = est::compile_spec(fixture("shadowed_priority.est"));
  Pair p = both(spec,
                "in p.go\n"
                "in p.go\n"
                "eof\n",
                core::Options::none());
  expect_identical(p);
  EXPECT_EQ(p.pruned.verdict, core::Verdict::Valid);
  EXPECT_GT(p.pruned.stats.static_skips, 0u);
}

// Same-seed fuzz campaigns with pruning toggled: both must be clean (every
// oracle invariant holds either way) and cover the same trace variants.
TEST(PruneDiff, SameSeedFuzzCampaignsAgree) {
  fuzz::FuzzConfig config;
  config.seed = 20260805;
  config.iterations = 3;
  config.specs = {"ack"};
  config.static_prune = true;
  fuzz::FuzzReport pruned = fuzz::run_fuzz(config);
  config.static_prune = false;
  fuzz::FuzzReport plain = fuzz::run_fuzz(config);
  EXPECT_TRUE(pruned.clean()) << pruned.summary();
  EXPECT_TRUE(plain.clean()) << plain.summary();
  EXPECT_EQ(pruned.traces_analyzed, plain.traces_analyzed);
  EXPECT_EQ(pruned.verdicts, plain.verdicts);
  EXPECT_EQ(pruned.oracle_checks, plain.oracle_checks);
}

}  // namespace
}  // namespace tango
