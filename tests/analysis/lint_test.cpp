// Lint pass tests: the §2.1 input requirements made mechanically checkable.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include "specs/builtin_specs.hpp"

namespace tango::analysis {
namespace {

LintReport lint_src(std::string_view src) {
  return lint(est::compile_spec(src));
}

bool mentions(const LintReport& r, std::string_view fragment) {
  for (const Diagnostic& d : r.findings) {
    if (d.message.find(fragment) != std::string::npos) return true;
  }
  return false;
}

TEST(Lint, CleanSpecHasNoErrorsOrWarnings) {
  // ack is clean apart from a guards note (t1/t2 genuinely overlap — that
  // nondeterminism is the point of the paper's §3.1 example).
  LintReport r = lint_src(specs::ack());
  EXPECT_FALSE(r.has_errors()) << r.render();
  EXPECT_FALSE(r.has_warnings()) << r.render();
}

TEST(Lint, BuiltinSpecsAreFreeOfErrors) {
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    LintReport r = lint(est::compile_spec(text));
    EXPECT_FALSE(r.has_errors()) << name << ":\n" << r.render();
  }
}

TEST(Lint, UnreachableStateDetected) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state a, b, orphan;
  initialize to a begin end;
  trans
    from a to b when P.m name t1: begin end;
    from orphan to a when P.m name dead: begin output P.o; end;
end;
end.
)");
  EXPECT_TRUE(mentions(r, "'orphan' is unreachable"));
  EXPECT_TRUE(mentions(r, "'dead' can never fire"));
}

TEST(Lint, UnguardedNonProgressSelfLoopIsAnError) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to same name spin: begin end;
    from z to z when P.m name ok: begin output P.o; end;
end;
end.
)");
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(mentions(r, "non-progress cycle"));
  EXPECT_TRUE(mentions(r, "WILL diverge"));
}

TEST(Lint, GuardedNonProgressCycleIsOnlyAWarning) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to same provided x < 3 name bounded: begin x := x + 1; end;
    from z to z when P.m name consume: begin output P.o; end;
end;
end.
)");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(mentions(r, "non-progress cycle"));
}

TEST(Lint, MultiStateNonProgressCycleDetected) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state a, b;
  initialize to a begin end;
  trans
    from a to b name hop: begin end;
    from b to a name back: begin end;
    from a to a when P.m name ok: begin output P.o; end;
end;
end.
)");
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(mentions(r, "non-progress cycle"));
}

TEST(Lint, SpontaneousTransitionWithOutputIsProgress) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: m; by B: o;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to same name beacon: begin output P.o; end;
    from z to z when P.m name consume: begin end;
end;
end.
)");
  EXPECT_FALSE(mentions(r, "non-progress cycle")) << r.render();
}

TEST(Lint, DeadInteractionsReported) {
  LintReport r = lint_src(R"(
specification s;
channel CH(A, B); by A: used; ignored; by B: sent; never;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans from z to z when P.used name t: begin output P.sent; end;
end;
end.
)");
  EXPECT_TRUE(mentions(r, "'p.ignored' is never consumed"));
  EXPECT_TRUE(mentions(r, "'p.never' is never produced"));
  EXPECT_FALSE(mentions(r, "'p.used'"));
  EXPECT_FALSE(mentions(r, "'p.sent'"));
}

}  // namespace
}  // namespace tango::analysis
