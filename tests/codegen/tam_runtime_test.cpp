// Direct unit tests of the generated-tool runtime (tam_runtime.hpp) using
// a small hand-written Model — the same machinery every generated TAM
// links against, tested here without going through the generator.
//
// The model: a one-ip toggle machine.
//   state 0 --in flip--> state 1 (outputs "hi(n)" with n = count)
//   state 1 --in flip--> state 0 (no output)
#include "tam_runtime.hpp"

#include <gtest/gtest.h>

namespace {

struct ToggleState {
  int fsm = -1;
  long long count = 0;
  bool operator==(const ToggleState&) const = default;
};

class ToggleModel final : public tam::Model {
 public:
  ToggleModel() {
    tables_.states = {"even", "odd"};
    tables_.interactions.push_back({"flip", {}});
    tables_.interactions.push_back(
        {"hi", {tam::ParamDesc{tam::ParamKind::Int, nullptr, 0}}});
    tam::IpDesc ip;
    ip.name = "p";
    ip.inputs["flip"] = 0;
    ip.outputs["hi"] = 1;
    tables_.ips.push_back(std::move(ip));
    trans_.push_back({"rise", {0}, 1, 0, 0,
                      std::numeric_limits<long long>::max()});
    trans_.push_back({"fall", {1}, 0, 0, 0,
                      std::numeric_limits<long long>::max()});
  }

  const tam::Tables& tables() const override { return tables_; }
  const std::vector<tam::TransInfo>& transitions() const override {
    return trans_;
  }
  int initializer_count() const override { return 1; }
  void init(int) override { s_ = ToggleState{}; s_.fsm = 0; }
  int fsm_state() const override { return s_.fsm; }
  void set_fsm_state(int state) override { s_.fsm = state; }
  std::shared_ptr<void> save() const override {
    return std::make_shared<ToggleState>(s_);
  }
  void restore(const std::shared_ptr<void>& snap) override {
    s_ = *static_cast<const ToggleState*>(snap.get());
  }
  bool provided(int, const std::vector<tam::Value>&) override { return true; }
  bool fire(int t, const std::vector<tam::Value>&, tam::OutputFn emit,
            void* ctx) override {
    if (t == 0) {  // rise: emit hi(count) then count++
      if (!emit(ctx, 0, 1, {s_.count})) return false;
      ++s_.count;
    }
    s_.fsm = trans_[static_cast<std::size_t>(t)].to;
    return true;
  }

 private:
  ToggleState s_;
  tam::Tables tables_;
  std::vector<tam::TransInfo> trans_;
};

tam::Result analyze(const std::string& trace_text,
                    tam::Options opts = {}) {
  ToggleModel model;
  tam::Trace trace = tam::parse_trace(model.tables(), trace_text);
  return tam::Analyzer(model, trace, opts).run();
}

TEST(TamRuntime, ParseTraceBasics) {
  ToggleModel model;
  tam::Trace t = tam::parse_trace(model.tables(),
                                  "# comment\nin p.flip\nout p.hi(0)\n");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].dir, tam::Dir::In);
  EXPECT_EQ(t.events()[1].params, std::vector<tam::Value>{0});
  EXPECT_EQ(t.list(0, tam::Dir::In).size(), 1u);
}

TEST(TamRuntime, ParseErrors) {
  ToggleModel model;
  EXPECT_THROW(tam::parse_trace(model.tables(), "in q.flip\n"), tam::Fault);
  EXPECT_THROW(tam::parse_trace(model.tables(), "in p.nosuch\n"), tam::Fault);
  EXPECT_THROW(tam::parse_trace(model.tables(), "out p.hi\n"), tam::Fault);
  EXPECT_THROW(tam::parse_trace(model.tables(), "sideways p.flip\n"),
               tam::Fault);
  EXPECT_THROW(tam::parse_trace(model.tables(), "out p.hi(mauve)\n"),
               tam::Fault);
}

TEST(TamRuntime, ValidAndInvalidVerdicts) {
  EXPECT_EQ(analyze("in p.flip\nout p.hi(0)\nin p.flip\n").verdict,
            tam::Verdict::Valid);
  // Wrong payload: count starts at 0.
  EXPECT_EQ(analyze("in p.flip\nout p.hi(5)\n").verdict,
            tam::Verdict::Invalid);
  // Second rise must carry count 1.
  EXPECT_EQ(
      analyze("in p.flip\nout p.hi(0)\nin p.flip\nin p.flip\nout p.hi(1)\n")
          .verdict,
      tam::Verdict::Valid);
  EXPECT_EQ(
      analyze("in p.flip\nout p.hi(0)\nin p.flip\nin p.flip\nout p.hi(7)\n")
          .verdict,
      tam::Verdict::Invalid);
}

TEST(TamRuntime, EofLineEndsTheTrace) {
  EXPECT_EQ(analyze("in p.flip\nout p.hi(0)\neof\nin p.flip\n").verdict,
            tam::Verdict::Valid);  // the trailing event is ignored
}

TEST(TamRuntime, StatsAreCounted) {
  tam::Result r = analyze("in p.flip\nout p.hi(0)\nin p.flip\n");
  EXPECT_EQ(r.stats.transitions_executed, 2u);
  EXPECT_GE(r.stats.generates, 2u);
}

TEST(TamRuntime, BudgetYieldsInconclusive) {
  tam::Options opts;
  opts.max_transitions = 1;
  EXPECT_EQ(analyze("in p.flip\nout p.hi(0)\nin p.flip\n", opts).verdict,
            tam::Verdict::Inconclusive);
}

TEST(TamRuntime, InitialStateSearch) {
  // "fall" from state 1 consumes flip without output: a lone flip with no
  // hi is only explainable starting in state odd... but it is also
  // explainable from even IF the hi output were recorded. With no output
  // recorded, starting state even forces rise -> emit -> no pending
  // output -> dead.
  tam::Options opts;
  EXPECT_EQ(analyze("in p.flip\n", opts).verdict, tam::Verdict::Invalid);
  opts.initial_state_search = true;
  EXPECT_EQ(analyze("in p.flip\n", opts).verdict, tam::Verdict::Valid);
}

TEST(TamRuntime, PascalHelpers) {
  EXPECT_EQ(tam::pmod(-7, 3), 2);
  EXPECT_EQ(tam::pdiv(7, 2), 3);
  EXPECT_EQ(tam::pabs(-4), 4);
  EXPECT_THROW(tam::pdiv(1, 0), tam::Fault);
  EXPECT_THROW(tam::pmod(1, 0), tam::Fault);
  std::array<long long, 3> arr{10, 20, 30};
  EXPECT_EQ(tam::idx(arr, 2, 1, 3), 20);
  EXPECT_THROW(tam::idx(arr, 0, 1, 3), tam::Fault);
}

TEST(TamRuntime, HeapSemantics) {
  tam::Heap<long long> heap;
  const tam::Ref a = heap.alloc();
  heap.at(a) = 42;
  tam::Heap<long long> copy = heap;  // value copy (save)
  heap.at(a) = 7;
  EXPECT_EQ(copy.at(a), 42);
  heap.release(a);
  EXPECT_THROW(heap.at(a), tam::Fault);
  EXPECT_THROW(heap.release(a), tam::Fault);
  EXPECT_THROW(heap.release(0), tam::Fault);
  EXPECT_THROW(heap.at(0), tam::Fault);
  // Addresses are not reused after release.
  const tam::Ref b = heap.alloc();
  EXPECT_NE(a, b);
}

}  // namespace
