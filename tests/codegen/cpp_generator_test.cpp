// C++ generator tests: structural checks on the emitted source. (The
// generated code is also COMPILED and EXECUTED as part of the build: see
// examples/CMakeLists.txt, targets abp_tam / tp0_tam and the
// generated_tam_* ctest entries.)
#include "codegen/cpp_generator.hpp"

#include <gtest/gtest.h>

#include "specs/builtin_specs.hpp"

namespace tango::codegen {
namespace {

std::string gen(std::string_view spec_text) {
  est::Spec spec = est::compile_spec(spec_text);
  return generate_cpp(spec);
}

bool contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CppGenerator, AckEmitsModelSkeleton) {
  std::string code = gen(specs::ack());
  EXPECT_TRUE(contains(code, "#include \"tam_runtime.hpp\""));
  EXPECT_TRUE(contains(code, "struct State"));
  EXPECT_TRUE(contains(code, "class GeneratedModel final : public tam::Model"));
  EXPECT_TRUE(contains(code, "int main(int argc, char** argv)"));
  EXPECT_TRUE(contains(code, "tam::run_cli(model, argc, argv)"));
  // Three transitions t_0..t_2 and their table rows.
  EXPECT_TRUE(contains(code, "void t_0("));
  EXPECT_TRUE(contains(code, "void t_2("));
  EXPECT_TRUE(contains(code, "trans_.push_back({\"t1\""));
  EXPECT_TRUE(contains(code, "trans_.push_back({\"t3\""));
}

TEST(CppGenerator, Tp0EmitsHeapAndRecords) {
  std::string code = gen(specs::tp0());
  // The linked-list Cell record becomes a struct with a typed heap.
  EXPECT_TRUE(contains(code, "struct T_cell"));
  EXPECT_TRUE(contains(code, "tam::Heap<T_cell> h_T_cell"));
  EXPECT_TRUE(contains(code, "f_data"));
  EXPECT_TRUE(contains(code, "f_next"));
  // new/dispose translate to typed heap calls.
  EXPECT_TRUE(contains(code, ".alloc()"));
  EXPECT_TRUE(contains(code, ".release("));
  // Routines become member functions.
  EXPECT_TRUE(contains(code, "void r_enq("));
  EXPECT_TRUE(contains(code, "void r_deq("));
  // var parameters become references.
  EXPECT_TRUE(contains(code, "tam::Ref& l_0_head"));
}

TEST(CppGenerator, LapdEmitsControlFlow) {
  std::string code = gen(specs::lapd());
  EXPECT_TRUE(contains(code, "tam::pmod("));        // mod-8 arithmetic
  EXPECT_TRUE(contains(code, "for ("));             // go-back-N loop
  EXPECT_TRUE(contains(code, "std::array<long long, 8>"));  // sentbuf
  EXPECT_TRUE(contains(code, "bool p_"));           // provided guards
  EXPECT_TRUE(contains(code, "long long r_outstanding("));
}

TEST(CppGenerator, WhenParamsReadFromArgs) {
  std::string code = gen(specs::abp());
  EXPECT_TRUE(contains(code, "args[0]"));
  // Output parameters are marshalled to long long.
  EXPECT_TRUE(contains(code, "static_cast<long long>("));
}

TEST(CppGenerator, PriorityAndStateTables) {
  std::string code = gen(R"(
specification s;
channel CH(A, B); by A: m; by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state s1, s2;
  initialize to s2 begin end;
  trans from s1, s2 to s1 when P.m priority 3 name t: begin output P.r; end;
end;
end.
)");
  EXPECT_TRUE(contains(code, "{0, 1}, 0, 0, 0, 3LL"));  // from/to/when/prio
  EXPECT_TRUE(contains(code, "s_.fsm = 1;  // s2"));
  EXPECT_TRUE(contains(code, "tables_.states.push_back(\"s1\")"));
}

TEST(CppGenerator, EnumParamsGetLiteralTables) {
  std::string code = gen(R"(
specification s;
channel CH(A, B); by A: paint(c: Color); by B: done;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  type Color = (red, green, blue);
  state z;
  initialize to z begin end;
  trans from z to z when P.paint name t: begin output P.done; end;
end;
end.
)");
  EXPECT_TRUE(contains(code, "\"red\", \"green\", \"blue\""));
  EXPECT_TRUE(contains(code, "tam::ParamKind::Enum"));
}

TEST(CppGenerator, RejectsStructuredInteractionParams) {
  EXPECT_THROW(gen(R"(
specification s;
channel CH(A, B); by A: m(p: Pt); by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  type Pt = record x, y: integer; end;
  state z;
  initialize to z begin end;
end;
end.
)"),
               CompileError);
}

TEST(CppGenerator, CaseWithoutOtherwiseFaults) {
  std::string code = gen(R"(
specification s;
channel CH(A, B); by A: m(v: integer); by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans from z to z when P.m name t:
  begin
    case v of 1: x := 1; 2: x := 2 end;
    output P.r;
  end;
end;
end.
)");
  EXPECT_TRUE(contains(code, "case 1LL:"));
  EXPECT_TRUE(contains(code, "case selector matches no label"));
}

}  // namespace
}  // namespace tango::codegen
