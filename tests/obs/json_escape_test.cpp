// The shared JSON string escaper (obs/json.hpp): valid UTF-8 passes
// through byte-for-byte, every non-UTF-8 byte (stray continuation bytes,
// overlong encodings, surrogates, out-of-range code points) is \u00XX-
// escaped, and whatever the writer produces both reparses to the original
// string and survives the stream validator's UTF-8 gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"

namespace tango::obs {
namespace {

std::string escape(std::string_view s) {
  std::string out;
  escape_json_into(out, s);
  return out;
}

/// Writer → parser round trip: the escaped form must decode back to the
/// exact input bytes.
std::string round_trip(const std::string& s) {
  const JsonValue v = parse_json("{\"k\":" + escape(s) + "}");
  const JsonValue* f = v.find("k");
  EXPECT_NE(f, nullptr);
  return f != nullptr ? f->string : std::string();
}

TEST(JsonEscape, AsciiAndControlCharacters) {
  EXPECT_EQ(escape("plain"), "\"plain\"");
  EXPECT_EQ(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(escape("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
  EXPECT_EQ(escape(std::string("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
}

TEST(JsonEscape, ValidUtf8PassesThroughRaw) {
  const std::vector<std::string> samples = {
      "caf\xc3\xa9",              // U+00E9, 2-byte
      "\xe2\x82\xac",             // U+20AC euro, 3-byte
      "\xf0\x9f\x9a\x80",         // U+1F680 rocket, 4-byte
      "mixed \xc3\xa9 ascii",
  };
  for (const std::string& s : samples) {
    EXPECT_EQ(escape(s), "\"" + s + "\"") << s;
    EXPECT_TRUE(is_valid_utf8(s)) << s;
  }
}

TEST(JsonEscape, InvalidBytesAreEscapedNotPassedRaw) {
  // Each case: (input, escaped form). A raw pass-through of any of these
  // would make the emitted JSONL line invalid UTF-8.
  struct Case { std::string in, want; };
  const std::vector<Case> cases = {
      {std::string("\xff", 1), "\"\\u00ff\""},           // not a lead byte
      {std::string("\x80", 1), "\"\\u0080\""},           // lone continuation
      {std::string("\xc3", 1), "\"\\u00c3\""},           // truncated 2-byte
      {std::string("\xc0\xaf", 2), "\"\\u00c0\\u00af\""},  // overlong '/'
      {std::string("\xed\xa0\x80", 3),
       "\"\\u00ed\\u00a0\\u0080\""},                     // surrogate D800
      {std::string("\xf4\x90\x80\x80", 4),
       "\"\\u00f4\\u0090\\u0080\\u0080\""},              // > U+10FFFF
  };
  for (const Case& c : cases) {
    EXPECT_EQ(escape(c.in), c.want);
    EXPECT_FALSE(is_valid_utf8(c.in));
    EXPECT_TRUE(is_valid_utf8(escape(c.in)));
  }
}

TEST(JsonEscape, ValidUtf8RoundTripsByteExactly) {
  const std::vector<std::string> samples = {
      "",
      "plain",
      "caf\xc3\xa9 \xf0\x9f\x9a\x80",
      std::string("\x00nul inside", 11),
      "tabs\tand\nnewlines\r",
  };
  for (const std::string& s : samples) {
    EXPECT_EQ(round_trip(s), s);
    EXPECT_TRUE(is_valid_utf8(escape(s)));
  }
}

TEST(JsonEscape, InvalidBytesRoundTripAsTheirCodePoints) {
  // The documented lossy-but-deterministic mapping: an invalid byte 0xXX
  // is escaped as \u00XX, which reparses as the UTF-8 encoding of U+00XX.
  // The emitted line is always valid UTF-8 and always reparses cleanly —
  // for every possible byte value.
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  const std::string escaped = escape(all);
  EXPECT_TRUE(is_valid_utf8(escaped));
  const std::string decoded = round_trip(all);
  EXPECT_TRUE(is_valid_utf8(decoded));
  // ASCII prefix survives exactly.
  EXPECT_EQ(decoded.substr(0, 128), all.substr(0, 128));
  // Bytes >= 0x80 (all invalid as standalone UTF-8) come back as U+0080..
  // U+00FF, two bytes each.
  EXPECT_EQ(decoded.size(), 128u + 2u * 128u);
  std::size_t pos = 128;
  for (int b = 0x80; b < 256; ++b) {
    const auto want0 = static_cast<char>(0xC0 | (b >> 6));
    const auto want1 = static_cast<char>(0x80 | (b & 0x3F));
    ASSERT_LT(pos + 1, decoded.size());
    EXPECT_EQ(decoded[pos], want0) << "byte " << b;
    EXPECT_EQ(decoded[pos + 1], want1) << "byte " << b;
    pos += 2;
  }
}

TEST(JsonEscape, EventWithNonUtf8SpecNameValidates) {
  // End to end: an event whose string field carries raw bytes still
  // serializes to a line the schema checker accepts (satellite: the old
  // escaper passed >= 0x80 through raw and produced invalid JSONL).
  Event e;
  e.kind = EventKind::Run;
  e.version = kEventSchemaVersion;
  e.engine = "dfs";
  e.spec = std::string("sp\xffms \x80spec", 11);
  e.spec_ref = "builtin:abp";
  e.trace_ref = "t.tr";
  e.order = "nr";
  e.flags = "{}";
  const std::string line = to_jsonl(e);
  EXPECT_TRUE(is_valid_utf8(line));
  std::vector<SchemaError> errors;
  EXPECT_TRUE(validate_stream(line + "\n", errors))
      << (errors.empty() ? "" : errors.front().message);
}

}  // namespace
}  // namespace tango::obs
