// Satellite of the observability PR: the canonicalization contract of
// MachineState::hash() (DESIGN.md "State hashing"). Heap cells are hashed
// in pointer-reachability order with addresses renumbered by first visit,
// so two states whose heaps are isomorphic — same reachable structure and
// contents, different absolute addresses from different new/dispose
// interleavings — must hash equal, while any observable difference
// (contents, aliasing, a leaked cell) must still be distinguished.
//
// Every property is asserted for BOTH implementations: the full recursive
// walk hash() and the incremental hash_cached() (which, on these
// hand-built states without spec-derived pointer flags, conservatively
// routes every variable through the joint heap component).
#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/value.hpp"

namespace tango::rt {
namespace {

/// The incremental path must agree with the full walk on any state, and
/// two hash-equal states must also be hash_cached-equal (the permutation
/// contract extends to the cached path).
void expect_incremental_agrees(const MachineState& m) {
  EXPECT_EQ(m.hash_cached(), m.hash());
}

Value list_cell(std::int64_t payload, std::uint32_t next_addr) {
  return Value::make_record(
      {Value::make_int(payload), Value::make_pointer(next_addr)});
}

TEST(HashPermutation, AllocationOrderDoesNotChangeHash) {
  // A: cells allocated in visit order.
  MachineState a;
  a.fsm_state = 2;
  const std::uint32_t a1 = a.heap.allocate(Value::make_int(7));
  const std::uint32_t a2 = a.heap.allocate(Value::make_int(9));
  a.vars = {Value::make_pointer(a1), Value::make_pointer(a2)};

  // B: a padding allocation shifts every address, and the two live cells
  // are allocated in the opposite order; the reachable graph seen from the
  // variables is identical.
  MachineState b;
  b.fsm_state = 2;
  const std::uint32_t pad = b.heap.allocate(Value::make_int(0));
  const std::uint32_t b9 = b.heap.allocate(Value::make_int(9));
  const std::uint32_t b7 = b.heap.allocate(Value::make_int(7));
  ASSERT_TRUE(b.heap.release(pad));
  b.vars = {Value::make_pointer(b7), Value::make_pointer(b9)};

  ASSERT_NE(a1, b7);  // the absolute addresses really do differ
  EXPECT_EQ(a.hash(), b.hash());
  expect_incremental_agrees(a);
  expect_incremental_agrees(b);
  EXPECT_EQ(a.hash_cached(), b.hash_cached());
}

TEST(HashPermutation, LinkedListBuildDirectionDoesNotChangeHash) {
  // Forward build: head allocated first, so addresses ascend along the
  // list. Backward build: tail first, addresses descend. Same list.
  constexpr std::int64_t payloads[] = {3, 1, 4, 1, 5};

  MachineState fwd;
  fwd.fsm_state = 0;
  {
    std::vector<std::uint32_t> addrs;
    for (std::int64_t p : payloads) {
      addrs.push_back(fwd.heap.allocate(list_cell(p, 0)));
    }
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
      fwd.heap.cell(addrs[i])->elems()[1] =
          Value::make_pointer(addrs[i + 1]);
    }
    fwd.vars = {Value::make_pointer(addrs.front())};
  }

  MachineState bwd;
  bwd.fsm_state = 0;
  {
    std::uint32_t next = 0;
    for (std::size_t i = std::size(payloads); i-- > 0;) {
      next = bwd.heap.allocate(list_cell(payloads[i], next));
    }
    bwd.vars = {Value::make_pointer(next)};
  }

  EXPECT_EQ(fwd.hash(), bwd.hash());
  expect_incremental_agrees(fwd);
  expect_incremental_agrees(bwd);
  EXPECT_EQ(fwd.hash_cached(), bwd.hash_cached());
}

TEST(HashPermutation, ReachableContentsStillDistinguish) {
  MachineState a;
  a.fsm_state = 1;
  a.vars = {Value::make_pointer(a.heap.allocate(Value::make_int(7)))};

  MachineState b;
  b.fsm_state = 1;
  b.vars = {Value::make_pointer(b.heap.allocate(Value::make_int(8)))};

  EXPECT_NE(a.hash(), b.hash());
  expect_incremental_agrees(a);
  expect_incremental_agrees(b);
}

TEST(HashPermutation, AliasingIsObservable) {
  // Two variables pointing at ONE shared cell vs. two distinct cells with
  // equal contents: assignment through one alias behaves differently, so
  // canonicalization must not conflate them.
  MachineState shared;
  shared.fsm_state = 0;
  const std::uint32_t cell = shared.heap.allocate(Value::make_int(5));
  shared.vars = {Value::make_pointer(cell), Value::make_pointer(cell)};

  MachineState distinct;
  distinct.fsm_state = 0;
  distinct.vars = {
      Value::make_pointer(distinct.heap.allocate(Value::make_int(5))),
      Value::make_pointer(distinct.heap.allocate(Value::make_int(5)))};

  EXPECT_NE(shared.hash(), distinct.hash());
  expect_incremental_agrees(shared);
  expect_incremental_agrees(distinct);
  EXPECT_NE(shared.hash_cached(), distinct.hash_cached());
}

TEST(HashPermutation, LeakedCellsStillDistinguish) {
  // A leaked (unreachable) cell is part of the paper's state: it changes
  // what future allocations may alias. Same reachable region, one leaked
  // cell extra -> different hash.
  MachineState clean;
  clean.fsm_state = 0;
  clean.vars = {Value::make_pointer(clean.heap.allocate(Value::make_int(1)))};

  MachineState leaky;
  leaky.fsm_state = 0;
  leaky.vars = {Value::make_pointer(leaky.heap.allocate(Value::make_int(1)))};
  (void)leaky.heap.allocate(Value::make_int(99));  // no root reaches it

  EXPECT_NE(clean.hash(), leaky.hash());
  expect_incremental_agrees(clean);
  expect_incremental_agrees(leaky);
  EXPECT_NE(clean.hash_cached(), leaky.hash_cached());
}

std::uint32_t next_rand(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state;
}

/// Builds one random heap graph — `n` record cells {payload, left, right}
/// whose edges may form cycles, self-loops and shared (aliased) subtrees —
/// allocating the cells in the order given by `perm`, then patching the
/// edges through the address map. The logical graph depends only on the
/// edge lists; the absolute addresses depend only on `perm`.
MachineState build_graph(std::size_t n,
                         const std::vector<std::size_t>& perm,
                         const std::vector<std::int64_t>& payloads,
                         const std::vector<std::size_t>& left,
                         const std::vector<std::size_t>& right,
                         const std::vector<std::size_t>& roots) {
  MachineState m;
  m.fsm_state = 1;
  std::vector<std::uint32_t> addr(n, 0);
  for (std::size_t i : perm) {
    addr[i] = m.heap.allocate(Value::make_record(
        {Value::make_int(payloads[i]), Value::nil(), Value::nil()}));
  }
  for (std::size_t i = 0; i < n; ++i) {
    Value* cell = m.heap.cell(addr[i]);
    cell->elems()[1] = Value::make_pointer(addr[left[i]]);
    cell->elems()[2] = Value::make_pointer(addr[right[i]]);
  }
  for (std::size_t r : roots) m.vars.push_back(Value::make_pointer(addr[r]));
  return m;
}

TEST(HashPermutation, RandomGraphsWithCyclesAndAliases) {
  for (std::uint32_t seed : {11u, 23u, 95u, 1995u, 4242u}) {
    std::uint32_t rng = seed;
    const std::size_t n = 3 + next_rand(rng) % 10;
    std::vector<std::int64_t> payloads;
    std::vector<std::size_t> left;
    std::vector<std::size_t> right;
    for (std::size_t i = 0; i < n; ++i) {
      payloads.push_back(static_cast<std::int64_t>(next_rand(rng) % 5));
      left.push_back(next_rand(rng) % n);   // may point anywhere: cycles,
      right.push_back(next_rand(rng) % n);  // self-loops, shared cells
    }
    // Roots: a random entry point, then one extra root per cell the
    // closure misses. The invariance contract covers the REACHABLE
    // region; leaked cells hash in address order on purpose (a leak is an
    // allocation-history artifact, see DESIGN.md), so the property test
    // keeps every cell reachable.
    std::vector<std::size_t> roots = {next_rand(rng) % n};
    std::vector<bool> reached(n, false);
    std::vector<std::size_t> frontier = roots;
    while (!frontier.empty()) {
      const std::size_t i = frontier.back();
      frontier.pop_back();
      if (reached[i]) continue;
      reached[i] = true;
      frontier.push_back(left[i]);
      frontier.push_back(right[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (reached[i]) continue;
      roots.push_back(i);
      frontier.push_back(i);
      while (!frontier.empty()) {
        const std::size_t j = frontier.back();
        frontier.pop_back();
        if (reached[j]) continue;
        reached[j] = true;
        frontier.push_back(left[j]);
        frontier.push_back(right[j]);
      }
    }

    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;

    const MachineState reference =
        build_graph(n, identity, payloads, left, right, roots);
    for (int round = 0; round < 4; ++round) {
      std::vector<std::size_t> perm = identity;
      for (std::size_t i = n; i > 1; --i) {
        std::swap(perm[i - 1], perm[next_rand(rng) % i]);
      }
      const MachineState shuffled =
          build_graph(n, perm, payloads, left, right, roots);
      EXPECT_EQ(reference.hash(), shuffled.hash())
          << "seed " << seed << " round " << round;
      EXPECT_EQ(reference.hash_cached(), shuffled.hash_cached())
          << "seed " << seed << " round " << round;
    }

    // ...and a payload edit in the reachable region is never canonicalized
    // away (every cell is reachable from the roots or leaked — either way
    // the hash must move).
    std::vector<std::int64_t> edited = payloads;
    edited[next_rand(rng) % n] += 1000;
    const MachineState mutated =
        build_graph(n, identity, payloads, left, right, roots);
    const MachineState changed =
        build_graph(n, identity, edited, left, right, roots);
    EXPECT_NE(mutated.hash(), changed.hash()) << "seed " << seed;
    expect_incremental_agrees(mutated);
    expect_incremental_agrees(changed);
  }
}

TEST(HashPermutation, FsmStateAndNilAreCovered) {
  MachineState a;
  a.fsm_state = 1;
  a.vars = {Value::nil()};
  MachineState b;
  b.fsm_state = 2;
  b.vars = {Value::nil()};
  EXPECT_NE(a.hash(), b.hash());

  MachineState c;
  c.fsm_state = 1;
  c.vars = {Value::nil()};
  EXPECT_EQ(a.hash(), c.hash());
  expect_incremental_agrees(a);
  expect_incremental_agrees(b);
  EXPECT_NE(a.hash_cached(), b.hash_cached());
  EXPECT_EQ(a.hash_cached(), c.hash_cached());
}

TEST(HashPermutation, IncrementalCacheTracksDirectHeapWrites) {
  // Hand-built states have no mutation hooks, but a write through the
  // non-const cell() lookup bumps the heap epoch, which must be enough
  // for hash_cached() to notice and rehash the heap component.
  MachineState m;
  m.fsm_state = 0;
  const std::uint32_t addr = m.heap.allocate(Value::make_int(1));
  m.vars = {Value::make_pointer(addr)};
  expect_incremental_agrees(m);  // builds the cache

  *m.heap.cell(addr) = Value::make_int(2);
  expect_incremental_agrees(m);

  // An FSM flip is never cached at all.
  m.fsm_state = 3;
  expect_incremental_agrees(m);

  // And a root rewrite announced through the hook rehashes reachability.
  m.note_var_write(0);
  m.vars[0] = Value::nil();
  expect_incremental_agrees(m);
}

}  // namespace
}  // namespace tango::rt
