// Satellite of the observability PR: committed JSONL event goldens for
// three small specifications. The comparison is canonical-JSON per line —
// field order in the writer may change freely; any semantic change to the
// stream (new events, renamed fields, different hashes) must show up as a
// reviewed golden diff. Regenerate with:
//   TANGO_UPDATE_GOLDENS=1 ctest -R ObsGolden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return "";
  std::stringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

std::vector<std::string> nonblank_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Records the DFS event stream for one builtin spec against one committed
/// trace fixture.
std::string record_stream(const std::string& spec_name,
                          const std::string& trace_file,
                          const core::Options& preset) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(spec_name));
  tr::Trace trace = tr::parse_trace(
      spec, read_file(std::string(TANGO_TRACES_DIR) + "/" + trace_file));
  MemorySink sink;
  sink.set_refs("builtin:" + spec_name, trace_file);
  core::Options options = preset;
  options.sink = &sink;
  core::DfsResult r = core::analyze(spec, trace, options);
  EXPECT_EQ(r.verdict, core::Verdict::Valid) << spec_name;
  std::ostringstream os;
  for (const Event& e : sink.events()) os << to_jsonl(e) << '\n';
  return os.str();
}

void compare_with_golden(const std::string& recorded,
                         const std::string& golden_name) {
  const std::string path =
      std::string(TANGO_OBS_GOLDEN_DIR) + "/" + golden_name;

  // The recorded stream must always be schema-clean, golden or not.
  std::vector<SchemaError> errors;
  ASSERT_TRUE(validate_stream(recorded, errors))
      << golden_name << ": " << errors.front().line << ": "
      << errors.front().message;

  if (std::getenv("TANGO_UPDATE_GOLDENS") != nullptr) {
    std::ofstream(path, std::ios::binary) << recorded;
    GTEST_SKIP() << "golden rewritten: " << path;
  }

  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << "missing golden " << path
                               << " (set TANGO_UPDATE_GOLDENS=1 to create)";

  // The committed file must itself satisfy the schema — a hand-edited
  // golden can not smuggle an invalid stream past the validator.
  errors.clear();
  EXPECT_TRUE(validate_stream(golden, errors)) << "golden violates schema";

  const std::vector<std::string> got = nonblank_lines(recorded);
  const std::vector<std::string> want = nonblank_lines(golden);
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    std::string got_canon;
    std::string want_canon;
    ASSERT_NO_THROW(got_canon = canonical(parse_json(got[i])))
        << golden_name << " line " << i + 1;
    ASSERT_NO_THROW(want_canon = canonical(parse_json(want[i])))
        << golden_name << " line " << i + 1;
    ASSERT_EQ(got_canon, want_canon)
        << golden_name << ": first difference at line " << i + 1;
  }
  EXPECT_EQ(got.size(), want.size()) << golden_name << ": length differs";
}

TEST(ObsGolden, AckPaperTraceNR) {
  // Paper §3.1 trace under the no-reordering preset: the backtracking run
  // of Figure 1.
  compare_with_golden(
      record_stream("ack", "ack_paper.tr", core::Options::none()),
      "ack_paper_nr.jsonl");
}

TEST(ObsGolden, AbpValidTraceIO) {
  compare_with_golden(
      record_stream("abp", "abp_valid.tr", core::Options::io()),
      "abp_valid_io.jsonl");
}

TEST(ObsGolden, Tp0ValidTraceFullHashed) {
  // FULL ordering with §4.2 state hashing on, so the golden pins the
  // prune.visited / checkpoint event shapes too.
  core::Options options = core::Options::full();
  options.hash_states = true;
  compare_with_golden(record_stream("tp0", "tp0_valid.tr", options),
                      "tp0_valid_full_hash.jsonl");
}

}  // namespace
}  // namespace tango::obs
