// The headline check of the observability PR: the replay oracle
// re-executes recorded event streams against a fresh machine and must (a)
// accept every stream an engine actually produced — all four order
// presets, all four engines — and (b) reject tampered streams. Also pins
// the determinism contract: --jobs=1 and --deterministic --jobs=4 streams
// replay to identical verdicts.
#include "obs/replay.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "core/parallel_dfs.hpp"
#include "obs/sink.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace tango::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

tr::Trace fixture(const est::Spec& spec, const std::string& name) {
  return tr::parse_trace(
      spec, read_file(std::string(TANGO_TRACES_DIR) + "/" + name));
}

struct PresetCase {
  const char* name;
  core::Options options;
};

std::vector<PresetCase> presets() {
  return {{"NR", core::Options::none()},
          {"IO", core::Options::io()},
          {"IP", core::Options::ip()},
          {"FULL", core::Options::full()}};
}

void expect_clean(const ReplayReport& report, const std::string& verdict,
                  const std::string& context) {
  EXPECT_TRUE(report.ok()) << context << ": " << report.first_issue();
  EXPECT_EQ(report.verdict, verdict) << context;
  EXPECT_GT(report.nodes_replayed, 0u) << context;
}

std::vector<Event> record_dfs(const est::Spec& spec, const tr::Trace& trace,
                              core::Options options, core::Verdict* verdict) {
  MemorySink sink;
  options.sink = &sink;
  core::DfsResult r = core::analyze(spec, trace, options);
  if (verdict != nullptr) *verdict = r.verdict;
  return sink.events();
}

std::vector<Event> record_parallel(const est::Spec& spec,
                                   const tr::Trace& trace,
                                   core::Options options,
                                   core::Verdict* verdict) {
  MemorySink sink;
  options.sink = &sink;
  core::DfsResult r = core::analyze_parallel(spec, trace, options);
  if (verdict != nullptr) *verdict = r.verdict;
  return sink.events();
}

std::vector<Event> record_mdfs(const est::Spec& spec, const tr::Trace& trace,
                               core::Options options,
                               core::OnlineStatus* status) {
  MemorySink sink;
  options.sink = &sink;
  tr::MemoryFeed feed(spec);
  core::OnlineConfig config;
  config.options = options;
  core::OnlineAnalyzer analyzer(spec, feed, config);
  // Chunked delivery with search rounds in between, so the stream records
  // genuine on-line behaviour (retries, re-generation) rather than a
  // batch run in disguise.
  std::size_t delivered = 0;
  for (const tr::TraceEvent& e : trace.events()) {
    feed.push(e);
    if (++delivered % 2 == 0) (void)analyzer.step_round(4096);
  }
  if (trace.eof()) feed.push_eof();
  core::OnlineStatus s = analyzer.run();
  analyzer.finalize_stream();
  if (status != nullptr) *status = s;
  return sink.events();
}

TEST(ObsReplay, DfsStreamsReplayUnderEveryPreset) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  for (const PresetCase& preset : presets()) {
    core::Verdict verdict = core::Verdict::Inconclusive;
    std::vector<Event> events =
        record_dfs(spec, trace, preset.options, &verdict);
    ASSERT_EQ(verdict, core::Verdict::Valid) << preset.name;
    expect_clean(replay(spec, trace, events), "valid",
                 std::string("dfs/") + preset.name);
  }
}

TEST(ObsReplay, HashPrunedStreamsReplayUnderEveryPreset) {
  est::Spec spec = est::compile_spec(specs::tp0());
  tr::Trace trace = fixture(spec, "tp0_valid.tr");
  for (const PresetCase& preset : presets()) {
    core::Options options = preset.options;
    options.hash_states = true;
    core::Verdict verdict = core::Verdict::Inconclusive;
    std::vector<Event> events = record_dfs(spec, trace, options, &verdict);
    ASSERT_EQ(verdict, core::Verdict::Valid) << preset.name;
    expect_clean(replay(spec, trace, events), "valid",
                 std::string("hash-dfs/") + preset.name);
  }
}

TEST(ObsReplay, MdfsStreamsReplayUnderEveryPreset) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace trace = fixture(spec, "abp_valid.tr");
  for (const PresetCase& preset : presets()) {
    core::OnlineStatus status = core::OnlineStatus::Searching;
    std::vector<Event> events =
        record_mdfs(spec, trace, preset.options, &status);
    ASSERT_EQ(status, core::OnlineStatus::Valid) << preset.name;
    ReplayReport report = replay(spec, trace, events);
    expect_clean(report, "valid", std::string("mdfs/") + preset.name);
    EXPECT_EQ(report.engine, "mdfs");
  }
}

TEST(ObsReplay, InvalidTraceStreamReplays) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace trace = fixture(spec, "abp_invalid.tr");
  core::Verdict verdict = core::Verdict::Inconclusive;
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::io(), &verdict);
  ASSERT_EQ(verdict, core::Verdict::Invalid);
  ReplayReport report = replay(spec, trace, events);
  EXPECT_TRUE(report.ok()) << report.first_issue();
  EXPECT_EQ(report.verdict, "invalid");
  EXPECT_EQ(report.witness, 0u);  // no witness on an exhausted tree
}

TEST(ObsReplay, SequentialAndDeterministicParallelAgree) {
  // Acceptance check from the issue: a --jobs=1 stream and a
  // --deterministic --jobs=4 stream of the same analysis replay to
  // identical verdicts (the streams themselves differ — worker ids,
  // steal events — but the oracle's verdict must not).
  est::Spec spec = est::compile_spec(specs::tp0());
  tr::Trace trace = fixture(spec, "tp0_valid.tr");

  core::Options seq = core::Options::io();
  seq.hash_states = true;
  seq.jobs = 1;
  core::Verdict seq_verdict = core::Verdict::Inconclusive;
  std::vector<Event> seq_events =
      record_parallel(spec, trace, seq, &seq_verdict);

  core::Options par = core::Options::io();
  par.hash_states = true;
  par.jobs = 4;
  par.deterministic = true;
  core::Verdict par_verdict = core::Verdict::Inconclusive;
  std::vector<Event> par_events =
      record_parallel(spec, trace, par, &par_verdict);

  EXPECT_EQ(seq_verdict, par_verdict);
  ReplayReport seq_report = replay(spec, trace, seq_events);
  ReplayReport par_report = replay(spec, trace, par_events);
  EXPECT_TRUE(seq_report.ok()) << seq_report.first_issue();
  EXPECT_TRUE(par_report.ok()) << par_report.first_issue();
  EXPECT_EQ(seq_report.verdict, par_report.verdict);
  EXPECT_EQ(seq_report.verdict, "valid");
}

TEST(ObsReplay, RelaxedParallelStreamReplays) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace trace = fixture(spec, "abp_valid.tr");
  core::Options options = core::Options::full();
  options.hash_states = true;
  options.jobs = 3;  // relaxed mode: schedule-dependent stream
  core::Verdict verdict = core::Verdict::Inconclusive;
  std::vector<Event> events =
      record_parallel(spec, trace, options, &verdict);
  ASSERT_EQ(verdict, core::Verdict::Valid);
  expect_clean(replay(spec, trace, events), "valid", "par/relaxed");
}

TEST(ObsReplay, TamperedStateHashIsCaught) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::none(), nullptr);
  bool tampered = false;
  for (Event& e : events) {
    if (e.kind == EventKind::Fire && e.ok) {
      e.state_hash ^= 1;  // single-bit flip
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  ReplayReport report = replay(spec, trace, events);
  EXPECT_FALSE(report.ok());
}

TEST(ObsReplay, TamperedVerdictIsCaught) {
  // Flip the recorded verdict of a valid run: the witness consistency
  // rules (a non-valid verdict carries no witness; a valid one must name
  // an all_done node) must reject it.
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::none(), nullptr);
  ASSERT_EQ(events.back().kind, EventKind::Verdict);
  ASSERT_EQ(events.back().verdict, "valid");
  events.back().verdict = "invalid";
  ReplayReport report = replay(spec, trace, events);
  EXPECT_FALSE(report.ok());
}

TEST(ObsReplay, TamperedCountersAreCaught) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::none(), nullptr);
  Event& verdict = events.back();
  ASSERT_EQ(verdict.kind, EventKind::Verdict);
  // Claim one more executed transition than the stream shows.
  const std::string::size_type pos = verdict.stats_json.find("\"te\":");
  ASSERT_NE(pos, std::string::npos);
  const std::string::size_type end =
      verdict.stats_json.find_first_of(",}", pos);
  verdict.stats_json.replace(pos, end - pos, "\"te\":999999");
  ReplayReport report = replay(spec, trace, events);
  EXPECT_FALSE(report.ok());
}

TEST(ObsReplay, FabricatedFireIsCaught) {
  // Append a fire claiming a transition that was never enabled at the
  // witness node: generate() must fail to re-derive it.
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::none(), nullptr);
  Event fake;
  fake.kind = EventKind::Fire;
  fake.id = 100000;
  fake.parent = events.at(1).id;  // the root enter
  fake.transition = 9999;         // no such transition
  fake.input_event = -1;
  fake.ok = true;
  fake.state_hash = 0x1234;
  events.insert(events.end() - 1, fake);
  ReplayReport report = replay(spec, trace, events);
  EXPECT_FALSE(report.ok());
}

TEST(ObsReplay, ReplayStreamGatesOnSchema) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace trace = fixture(spec, "ack_paper.tr");
  std::vector<Event> events =
      record_dfs(spec, trace, core::Options::none(), nullptr);
  std::ostringstream os;
  for (const Event& e : events) os << to_jsonl(e) << '\n';

  // The clean text replays via the text entry point too.
  ReplayReport clean = replay_stream(spec, trace, os.str());
  EXPECT_TRUE(clean.ok()) << clean.first_issue();

  // Schema-violating text is rejected before any replay work.
  ReplayReport broken =
      replay_stream(spec, trace, os.str() + "{\"kind\":\"nope\"}\n");
  EXPECT_FALSE(broken.ok());
}

}  // namespace
}  // namespace tango::obs
