// Satellite of the observability PR: JSONL serialization round-trips, the
// schema validator accepts every recorded stream and rejects structural
// corruption, and `tango events stats` aggregation matches the run that
// produced the stream.
#include "obs/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::obs {
namespace {

constexpr const char* kAckTrace =
    "in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n";

struct Recording {
  core::DfsResult result;
  std::vector<Event> events;
  std::string text;  // JSONL
};

Recording record_ack_run(core::Options options = core::Options::none()) {
  Recording rec;
  est::Spec spec = est::compile_spec(specs::ack());
  MemorySink sink;
  sink.set_refs("builtin:ack", "");
  options.sink = &sink;
  rec.result = core::analyze_text(spec, kAckTrace, options);
  rec.events = sink.events();
  std::ostringstream os;
  for (const Event& e : rec.events) os << to_jsonl(e) << '\n';
  rec.text = os.str();
  return rec;
}

TEST(EventStream, JsonCanonicalIsFieldOrderInsensitive) {
  JsonValue a = parse_json(R"({"kind":"fire","id":3,"ok":true})");
  JsonValue b = parse_json(R"({"ok":true,"kind":"fire","id":3})");
  EXPECT_EQ(canonical(a), canonical(b));

  JsonValue c = parse_json(R"({"kind":"fire","id":4,"ok":true})");
  EXPECT_NE(canonical(a), canonical(c));
  // ...unless the differing key is ignored.
  EXPECT_EQ(canonical(a, {"id"}), canonical(c, {"id"}));
}

TEST(EventStream, FireEventRoundTrips) {
  Event e;
  e.kind = EventKind::Fire;
  e.id = 17;
  e.parent = 4;
  e.worker = 2;
  e.depth = 5;
  e.transition = 3;
  e.input_event = 9;
  e.ok = true;
  e.all_done = false;
  e.synthesized = true;
  e.state_hash = 0xdeadbeefcafe1234ULL;

  Event back = event_from_json(parse_json(to_jsonl(e)));
  EXPECT_EQ(back.kind, EventKind::Fire);
  EXPECT_EQ(back.id, e.id);
  EXPECT_EQ(back.parent, e.parent);
  EXPECT_EQ(back.worker, e.worker);
  EXPECT_EQ(back.depth, e.depth);
  EXPECT_EQ(back.transition, e.transition);
  EXPECT_EQ(back.input_event, e.input_event);
  EXPECT_EQ(back.ok, e.ok);
  EXPECT_EQ(back.synthesized, e.synthesized);
  EXPECT_EQ(back.state_hash, e.state_hash);  // survives the hex encoding
}

TEST(EventStream, RecordedStreamValidates) {
  Recording rec = record_ack_run();
  ASSERT_EQ(rec.result.verdict, core::Verdict::Valid);
  ASSERT_FALSE(rec.events.empty());

  std::vector<SchemaError> errors;
  EXPECT_TRUE(validate_stream(rec.text, errors));
  for (const SchemaError& e : errors) {
    ADD_FAILURE() << "line " << e.line << ": " << e.message;
  }

  EXPECT_EQ(rec.events.front().kind, EventKind::Run);
  EXPECT_EQ(rec.events.front().engine, "dfs");
  EXPECT_EQ(rec.events.front().version, kEventSchemaVersion);
  EXPECT_EQ(rec.events.front().spec_ref, "builtin:ack");
  EXPECT_EQ(rec.events.back().kind, EventKind::Verdict);
  EXPECT_EQ(rec.events.back().verdict, "valid");
}

TEST(EventStream, ValidatorRejectsCorruption) {
  Recording rec = record_ack_run();
  std::vector<std::string> lines;
  {
    std::istringstream is(rec.text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 3u);

  auto joined = [](const std::vector<std::string>& ls) {
    std::string text;
    for (const std::string& l : ls) text += l + "\n";
    return text;
  };

  std::vector<SchemaError> errors;

  // Decapitated stream: first event must be the run header.
  std::vector<std::string> headless(lines.begin() + 1, lines.end());
  EXPECT_FALSE(validate_stream(joined(headless), errors));

  // Unknown kind.
  errors.clear();
  std::vector<std::string> unknown = lines;
  unknown.push_back(R"({"kind":"teleport","id":999})");
  EXPECT_FALSE(validate_stream(joined(unknown), errors));

  // Duplicate node id: re-append an enter/fire line verbatim.
  errors.clear();
  std::vector<std::string> duped = lines;
  for (const std::string& l : lines) {
    if (l.find("\"fire\"") != std::string::npos) {
      duped.push_back(l);
      break;
    }
  }
  ASSERT_GT(duped.size(), lines.size());
  EXPECT_FALSE(validate_stream(joined(duped), errors));

  // Not JSON at all.
  errors.clear();
  std::vector<std::string> garbage = lines;
  garbage.push_back("this is not json");
  EXPECT_FALSE(validate_stream(joined(garbage), errors));
  EXPECT_EQ(errors.front().line, garbage.size());
}

TEST(EventStream, ParentsAlwaysPrecedeChildren) {
  core::Options options = core::Options::full();
  options.hash_states = true;
  Recording rec = record_ack_run(options);
  std::vector<bool> seen(rec.events.size() * 2 + 2, false);
  for (const Event& e : rec.events) {
    if (e.parent != 0) {
      ASSERT_LT(e.parent, seen.size());
      EXPECT_TRUE(seen[e.parent])
          << to_string(e.kind) << " references unseen node " << e.parent;
    }
    if ((e.kind == EventKind::Enter || e.kind == EventKind::Fire) &&
        e.id < seen.size()) {
      seen[e.id] = true;
    }
  }
}

TEST(EventStream, SummarizeMatchesTheRun) {
  Recording rec = record_ack_run();
  StreamStats s = summarize(rec.events);
  EXPECT_EQ(s.engine, "dfs");
  EXPECT_EQ(s.verdict, "valid");
  EXPECT_EQ(s.by_kind.at("run"), 1u);
  EXPECT_EQ(s.by_kind.at("verdict"), 1u);

  std::uint64_t enters = 0;
  std::uint64_t fires = 0;
  std::uint64_t ok = 0;
  for (const Event& e : rec.events) {
    if (e.kind == EventKind::Enter) ++enters;
    if (e.kind == EventKind::Fire) ++fires;
    if ((e.kind == EventKind::Enter || e.kind == EventKind::Fire) && e.ok) {
      ++ok;
    }
  }
  EXPECT_EQ(s.nodes, enters + fires);
  EXPECT_EQ(s.applied_ok, ok);
  EXPECT_EQ(s.max_depth, rec.result.stats.max_depth);

  const std::string json = stats_to_json(s);
  JsonValue parsed = parse_json(json);  // throws on malformed output
  ASSERT_TRUE(parsed.is_object());
}

TEST(EventStream, VerdictCountersMatchEngineStats) {
  Recording rec = record_ack_run();
  const Event& verdict = rec.events.back();
  ASSERT_EQ(verdict.kind, EventKind::Verdict);
  JsonValue counters = parse_json(verdict.stats_json);
  ASSERT_TRUE(counters.is_object());

  auto field = [&](const char* key) -> std::uint64_t {
    const JsonValue* v = counters.find(key);
    EXPECT_NE(v, nullptr) << key;
    return v == nullptr ? 0 : static_cast<std::uint64_t>(v->integer);
  };
  EXPECT_EQ(field("te"), rec.result.stats.transitions_executed);
  EXPECT_EQ(field("ge"), rec.result.stats.generates);
  EXPECT_EQ(field("re"), rec.result.stats.restores);
  EXPECT_EQ(field("sa"), rec.result.stats.saves);
  // Timing never appears in events: streams must be deterministic.
  EXPECT_EQ(counters.find("cpu_seconds"), nullptr);
  EXPECT_EQ(verdict.stats_json.find("phase"), std::string::npos);
}

TEST(EventStream, JsonlSinkRingFlushesEverything) {
  est::Spec spec = est::compile_spec(specs::ack());
  const std::string path =
      testing::TempDir() + "/obs_ring_test_stream.jsonl";
  core::DfsResult direct;
  std::uint64_t written = 0;
  {
    // Tiny ring so the run forces several mid-stream flushes.
    JsonlSink sink(path, /*ring_capacity=*/4);
    sink.set_refs("builtin:ack", "");
    core::Options options = core::Options::none();
    options.sink = &sink;
    direct = core::analyze_text(spec, kAckTrace, options);
    sink.flush();
    written = sink.events_written();
  }  // destructor drains the tail
  ASSERT_EQ(direct.verdict, core::Verdict::Valid);

  ReadResult back = read_events_file(path);
  EXPECT_TRUE(back.errors.empty());
  EXPECT_GE(back.events.size(), written);
  ASSERT_FALSE(back.events.empty());
  EXPECT_EQ(back.events.front().kind, EventKind::Run);
  EXPECT_EQ(back.events.back().kind, EventKind::Verdict);

  // The file stream and an in-memory recording of the same deterministic
  // run are identical (canonical compare: the file round trip re-sorts
  // the nested stats object's keys).
  Recording memory = record_ack_run();
  ASSERT_EQ(back.events.size(), memory.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(canonical(parse_json(to_jsonl(back.events[i]))),
              canonical(parse_json(to_jsonl(memory.events[i]))))
        << "event " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tango::obs
