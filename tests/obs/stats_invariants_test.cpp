// Satellite of the observability PR: the Stats counter invariants hold on
// real engine runs, violations are reported on corrupted counters, and
// operator+= is associative and commutative (the work-stealing engine and
// the fuzz campaign merge per-worker/per-iteration Stats in arbitrary
// orders, so the aggregate must not depend on the order).
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "core/parallel_dfs.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

constexpr const char* kAckTrace =
    "in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n";

est::Spec ack() { return est::compile_spec(specs::ack()); }

TEST(StatsInvariants, DfsRunIsStrictlyConsistent) {
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec, kAckTrace, Options::none());
  ASSERT_EQ(r.verdict, Verdict::Valid);
  EXPECT_TRUE(r.stats.invariant_violations(/*strict=*/true).empty());
}

TEST(StatsInvariants, HashDfsRunIsStrictlyConsistent) {
  est::Spec spec = ack();
  Options options = Options::full();
  options.hash_states = true;
  DfsResult r = analyze_text(spec, kAckTrace, options);
  ASSERT_EQ(r.verdict, Verdict::Valid);
  EXPECT_TRUE(r.stats.invariant_violations(/*strict=*/true).empty());
}

TEST(StatsInvariants, ParallelRunIsConsistent) {
  est::Spec spec = ack();
  Options options = Options::io();
  options.jobs = 2;
  tr::Trace trace = tr::parse_trace(spec, kAckTrace);
  DfsResult r = analyze_parallel(spec, trace, options);
  ASSERT_EQ(r.verdict, Verdict::Valid);
  EXPECT_TRUE(r.stats.invariant_violations().empty());
}

TEST(StatsInvariants, MdfsRunIsConsistentAtDefaultLevel) {
  // MDFS re-generates parked nodes, so te >= ge (the strict set) does not
  // apply; the default set must still hold.
  est::Spec spec = ack();
  tr::MemoryFeed feed(spec);
  tr::Trace full = tr::parse_trace(spec, kAckTrace);
  for (const tr::TraceEvent& e : full.events()) feed.push(e);
  feed.push_eof();
  OnlineConfig config;
  OnlineAnalyzer analyzer(spec, feed, config);
  ASSERT_EQ(analyzer.run(), OnlineStatus::Valid);
  EXPECT_TRUE(analyzer.stats().invariant_violations().empty());
}

TEST(StatsInvariants, CorruptedCountersAreReported) {
  Stats s;
  s.generates = 4;
  s.fanout_samples = 3;  // generate() bumps both — can never diverge
  s.transitions_executed = 2;
  s.pruned_by_hash = 5;  // every prune follows one executed transition
  std::vector<std::string> v = s.invariant_violations();
  ASSERT_EQ(v.size(), 2u);

  Stats t;
  t.transitions_executed = 1;
  t.generates = 3;  // strict: te >= ge for plain DFS
  t.fanout_samples = 3;
  EXPECT_TRUE(t.invariant_violations().empty());
  EXPECT_FALSE(t.invariant_violations(/*strict=*/true).empty());
}

// --- merge-order property test ------------------------------------------

std::uint32_t next_rand(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;  // numerical-recipes LCG
  return state;
}

Stats random_stats(std::uint32_t& rng) {
  Stats s;
  s.transitions_executed = next_rand(rng) % 1000;
  s.generates = next_rand(rng) % 1000;
  s.restores = next_rand(rng) % 1000;
  s.saves = next_rand(rng) % 1000;
  s.pruned_by_hash = next_rand(rng) % 100;
  s.evictions = next_rand(rng) % 100;
  s.tasks_published = next_rand(rng) % 100;
  s.tasks_stolen = next_rand(rng) % 100;
  s.fanout_sum = next_rand(rng) % 1000;
  s.fanout_samples = next_rand(rng) % 100;
  s.static_skips = next_rand(rng) % 100;
  s.trail_entries = next_rand(rng) % 1000;
  s.checkpoint_bytes = next_rand(rng) % 10000;
  s.max_depth = static_cast<int>(next_rand(rng) % 64);
  // Exactly representable (multiples of 1/64, bounded), so double addition
  // is exact in every order and the comparisons below can be ==.
  s.cpu_seconds = static_cast<double>(next_rand(rng) % 256) / 64.0;
  s.phase_parse.wall_seconds = static_cast<double>(next_rand(rng) % 256) / 64.0;
  s.phase_search.wall_seconds =
      static_cast<double>(next_rand(rng) % 256) / 64.0;
  s.phase_parse.rss_delta_kb = static_cast<std::int64_t>(next_rand(rng) % 512);
  return s;
}

void expect_same_aggregate(const Stats& a, const Stats& b) {
  EXPECT_EQ(a.transitions_executed, b.transitions_executed);
  EXPECT_EQ(a.generates, b.generates);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.saves, b.saves);
  EXPECT_EQ(a.pruned_by_hash, b.pruned_by_hash);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.tasks_published, b.tasks_published);
  EXPECT_EQ(a.tasks_stolen, b.tasks_stolen);
  EXPECT_EQ(a.fanout_sum, b.fanout_sum);
  EXPECT_EQ(a.fanout_samples, b.fanout_samples);
  EXPECT_EQ(a.static_skips, b.static_skips);
  EXPECT_EQ(a.trail_entries, b.trail_entries);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds);
  EXPECT_EQ(a.phase_parse.wall_seconds, b.phase_parse.wall_seconds);
  EXPECT_EQ(a.phase_search.wall_seconds, b.phase_search.wall_seconds);
  EXPECT_EQ(a.phase_parse.rss_delta_kb, b.phase_parse.rss_delta_kb);
}

Stats sum(const std::vector<Stats>& parts) {
  Stats total;
  for (const Stats& p : parts) total += p;
  return total;
}

TEST(StatsInvariants, MergeIsOrderAndPartitionInvariant) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1995u}) {
    std::uint32_t rng = seed;
    std::vector<Stats> parts;
    const std::size_t n = 5 + next_rand(rng) % 12;
    parts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) parts.push_back(random_stats(rng));
    const Stats reference = sum(parts);

    // Commutativity: random permutations.
    for (int round = 0; round < 4; ++round) {
      std::vector<Stats> shuffled = parts;
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1], shuffled[next_rand(rng) % i]);
      }
      expect_same_aggregate(sum(shuffled), reference);
    }

    // Associativity: random partitions into groups, each group summed
    // first (the per-worker subtotal), then the subtotals merged.
    for (int round = 0; round < 4; ++round) {
      const std::size_t groups = 1 + next_rand(rng) % n;
      std::vector<std::vector<Stats>> buckets(groups);
      for (const Stats& p : parts) {
        buckets[next_rand(rng) % groups].push_back(p);
      }
      std::vector<Stats> subtotals;
      subtotals.reserve(groups);
      for (const std::vector<Stats>& bucket : buckets) {
        subtotals.push_back(sum(bucket));
      }
      expect_same_aggregate(sum(subtotals), reference);
    }
  }
}

TEST(StatsInvariants, IdentityMergeIsNeutral) {
  std::uint32_t rng = 3u;
  Stats s = random_stats(rng);
  Stats merged = s;
  merged += Stats{};
  expect_same_aggregate(merged, s);
}

}  // namespace
}  // namespace tango::core
