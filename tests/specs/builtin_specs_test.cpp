// Built-in specifications: compile cleanly, expose the documented
// structure, and stay in sync with the standalone files under specs/.
#include "specs/builtin_specs.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "estelle/spec.hpp"

namespace tango::specs {
namespace {

TEST(BuiltinSpecs, LookupByName) {
  EXPECT_FALSE(builtin_spec("ack").empty());
  EXPECT_FALSE(builtin_spec("lapd").empty());
  EXPECT_TRUE(builtin_spec("nosuch").empty());
  EXPECT_EQ(all_builtin_specs().size(), 7u);
}

TEST(BuiltinSpecs, AckMatchesPaperFigure1) {
  est::Spec spec = est::compile_spec(ack());
  EXPECT_EQ(spec.states.size(), 2u);       // S1, S2
  EXPECT_EQ(spec.ips.size(), 2u);          // A, B
  ASSERT_EQ(spec.body().transitions.size(), 3u);
  EXPECT_EQ(spec.body().transitions[0].name, "t1");
  EXPECT_EQ(spec.body().transitions[1].name, "t2");
  EXPECT_EQ(spec.body().transitions[2].name, "t3");
}

TEST(BuiltinSpecs, Ip3MatchesPaperFigure2) {
  est::Spec spec = est::compile_spec(ip3());
  EXPECT_EQ(spec.states.size(), 2u);  // s1, s2
  EXPECT_EQ(spec.ips.size(), 3u);     // A, B, C
  EXPECT_EQ(spec.body().transitions.size(), 5u);  // t1..t5
  est::Spec prime = est::compile_spec(ip3prime());
  EXPECT_EQ(prime.body().transitions.size(), 3u);  // only t1..t3
}

TEST(BuiltinSpecs, Tp0HasThePaperTransitions) {
  est::Spec spec = est::compile_spec(tp0());
  std::set<std::string> names;
  for (const est::Transition& t : spec.body().transitions) {
    names.insert(t.name);
  }
  for (const char* expected : {"t13", "t14", "t15", "t16", "t17"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  // Around 19 transition declarations in the paper's TP0; ours is the
  // same order of magnitude.
  EXPECT_GE(spec.body().transitions.size(), 10u);
  // The buffers are dynamic memory (pointer-typed module variables).
  bool has_pointer_var = false;
  for (const est::ModuleVarInfo& v : spec.module_vars) {
    has_pointer_var |= v.type->kind == est::TypeKind::Pointer;
  }
  EXPECT_TRUE(has_pointer_var);
}

TEST(BuiltinSpecs, LapdHasQ921Structure) {
  est::Spec spec = est::compile_spec(lapd());
  EXPECT_EQ(spec.states.size(), 4u);
  EXPECT_GE(spec.body().transitions.size(), 25u);
  EXPECT_GE(spec.module_vars.size(), 7u);  // vs/va/vr/busy/buffers/queue
  // Both channels: user-side primitives and peer frames.
  EXPECT_GE(spec.interactions.size(), 16u);
}

TEST(BuiltinSpecs, FilesUnderSpecsDirStayInSync) {
  for (const auto& [name, text] : all_builtin_specs()) {
    const std::string path =
        std::string(TANGO_SPECS_DIR) + "/" + std::string(name) + ".est";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path
                           << " (regenerate with: tango cat " << name
                           << " > specs/" << name << ".est)";
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), text)
        << path << " diverged from the embedded copy";
  }
}

}  // namespace
}  // namespace tango::specs
