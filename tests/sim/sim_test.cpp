// Implementation-generation mode (simulator) and trace mutation helpers.
// The key integration property: every simulator-produced trace must be
// accepted by the analyzer — the simulator IS a conforming implementation.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/dfs.hpp"
#include "sim/mutate.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::sim {
namespace {

TEST(Simulator, AckRunProducesConsumableTrace) {
  est::Spec spec = est::compile_spec(specs::ack());
  std::vector<Feed> feeds = {
      make_feed(spec, 0, "a", "x"),
      make_feed(spec, 1, "a", "x"),
      make_feed(spec, 2, "b", "y"),
  };
  SimResult r = simulate(spec, feeds, {});
  // Depending on the seed the scheduler may strand y in its queue (T1 was
  // taken for every x) — the recorded trace is a valid behaviour either way.
  EXPECT_GE(r.trace.events().size(), 2u);
  EXPECT_TRUE(r.trace.eof());
  EXPECT_EQ(core::analyze(spec, r.trace, core::Options::none()).verdict,
            core::Verdict::Valid);
}

TEST(Simulator, SimulatedTracesAreValid) {
  est::Spec spec = est::compile_spec(specs::tp0());
  std::vector<Feed> feeds = {
      make_feed(spec, 0, "u", "tconreq"),
      make_feed(spec, 2, "n", "cc"),
      make_feed(spec, 4, "u", "tdtreq", {rt::Value::make_int(1)}),
      make_feed(spec, 6, "n", "dt", {rt::Value::make_int(2)}),
      make_feed(spec, 8, "u", "tdtreq", {rt::Value::make_int(3)}),
  };
  SimResult r = simulate(spec, feeds, {});
  ASSERT_TRUE(r.completed);
  for (const core::Options& opts :
       {core::Options::none(), core::Options::io(), core::Options::ip(),
        core::Options::full()}) {
    EXPECT_EQ(core::analyze(spec, r.trace, opts).verdict,
              core::Verdict::Valid)
        << opts.order_mode_name();
  }
}

TEST(Simulator, SeedsAreDeterministic) {
  est::Spec spec = est::compile_spec(specs::tp0());
  std::vector<Feed> feeds = {
      make_feed(spec, 0, "u", "tconreq"),
      make_feed(spec, 1, "n", "cc"),
      make_feed(spec, 2, "u", "tdtreq", {rt::Value::make_int(7)}),
      make_feed(spec, 2, "n", "dt", {rt::Value::make_int(8)}),
  };
  SimOptions a, b;
  a.seed = b.seed = 42;
  EXPECT_EQ(tr::to_text(spec, simulate(spec, feeds, a).trace),
            tr::to_text(spec, simulate(spec, feeds, b).trace));
}

TEST(Simulator, DifferentSeedsExploreDifferentInterleavings) {
  est::Spec spec = est::compile_spec(specs::tp0());
  std::vector<Feed> feeds;
  for (int i = 0; i < 4; ++i) {
    feeds.push_back(make_feed(spec, 0, "u", i == 0 ? "tconreq" : "tdtreq",
                              i == 0 ? std::vector<rt::Value>{}
                                     : std::vector<rt::Value>{
                                           rt::Value::make_int(i)}));
  }
  feeds.push_back(make_feed(spec, 1, "n", "cc"));
  std::set<std::string> distinct;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    SimOptions so;
    so.seed = seed;
    distinct.insert(tr::to_text(spec, simulate(spec, feeds, so).trace));
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Simulator, StepLimitIsHonoured) {
  est::Spec spec = est::compile_spec(specs::abp());
  // The spontaneous retransmit transition never quiesces once a frame is
  // outstanding: the step limit must cut the run.
  std::vector<Feed> feeds = {
      make_feed(spec, 0, "u", "send", {rt::Value::make_int(1)}),
  };
  SimOptions so;
  so.max_steps = 50;
  SimResult r = simulate(spec, feeds, so);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 50u);
  EXPECT_EQ(r.note, "step limit reached");
}

TEST(Simulator, FeedValidationRejectsBadNames) {
  est::Spec spec = est::compile_spec(specs::ack());
  EXPECT_THROW(make_feed(spec, 0, "nosuch", "x"), CompileError);
  EXPECT_THROW(make_feed(spec, 0, "a", "nosuch"), CompileError);
  // ack is an output of A, not an input.
  EXPECT_THROW(make_feed(spec, 0, "a", "ack"), CompileError);
  EXPECT_THROW(make_feed(spec, 0, "a", "x", {rt::Value::make_int(1)}),
               CompileError);
}

TEST(Mutate, CopyPreservesEverything) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace t = tr::parse_trace(spec, "in u.send(5)\nout m.frame(0, 5)\n");
  tr::Trace c = copy_trace(t);
  EXPECT_EQ(tr::to_text(spec, c), tr::to_text(spec, t));
}

TEST(Mutate, LastOutputParamEdit) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace t = tr::parse_trace(
      spec, "in u.send(5)\nout m.frame(0, 5)\nin m.ack(0)\nout u.confirm\n");
  // confirm has no parameters; the frame is the last output with an int.
  tr::Trace m = mutate_last_output_param(t);
  EXPECT_EQ(m.events()[1].params[0].scalar(), 1);  // seq bumped 0 -> 1
  // The paper's §4.2 procedure: the analyzer must now reject the trace.
  EXPECT_EQ(core::analyze(spec, m, core::Options::io()).verdict,
            core::Verdict::Invalid);
}

TEST(Mutate, NthFromLastSelectsEarlierOutputs) {
  est::Spec spec = est::compile_spec(specs::abp());
  tr::Trace t = tr::parse_trace(
      spec,
      "in u.send(5)\nout m.frame(0, 5)\nin m.ack(0)\nout u.confirm\n"
      "in u.send(6)\nout m.frame(1, 6)\nin m.ack(1)\nout u.confirm\n");
  tr::Trace m = mutate_output_param_from_last(t, 1);
  EXPECT_EQ(m.events()[1].params[0].scalar(), 1);     // first frame edited
  EXPECT_EQ(m.events()[5].params[0].scalar(), 1);     // second untouched
  EXPECT_THROW(mutate_output_param_from_last(t, 5), CompileError);
}

TEST(Mutate, DropSwapTruncate) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::Trace t =
      tr::parse_trace(spec, "in a.x\nin a.x\nin b.y\nout a.ack\n");
  EXPECT_EQ(drop_event(t, 1).events().size(), 3u);
  EXPECT_THROW(drop_event(t, 9), CompileError);
  tr::Trace s = swap_adjacent(t, 0);
  EXPECT_EQ(s.events()[0].seq, 0u);  // seqs reassigned in new order
  EXPECT_THROW(swap_adjacent(t, 3), CompileError);
  tr::Trace cut = truncate(t, 2, /*keep_eof=*/false);
  EXPECT_EQ(cut.events().size(), 2u);
  EXPECT_FALSE(cut.eof());
}

TEST(Mutate, MutatedValidTracesBecomeInvalid) {
  // End-to-end §4.2 procedure on TP0: simulate, edit one parameter of the
  // last data interaction, reanalyze.
  est::Spec spec = est::compile_spec(specs::tp0());
  std::vector<Feed> feeds = {
      make_feed(spec, 0, "u", "tconreq"),
      make_feed(spec, 1, "n", "cc"),
      make_feed(spec, 3, "u", "tdtreq", {rt::Value::make_int(10)}),
      make_feed(spec, 5, "n", "dt", {rt::Value::make_int(20)}),
  };
  SimResult r = simulate(spec, feeds, {});
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(core::analyze(spec, r.trace, core::Options::full()).verdict,
            core::Verdict::Valid);
  tr::Trace bad = mutate_last_output_param(r.trace);
  EXPECT_EQ(core::analyze(spec, bad, core::Options::full()).verdict,
            core::Verdict::Invalid);
}

}  // namespace
}  // namespace tango::sim
