// Property tests for the sim::mutate operators the fuzzer builds its
// invalid/partial trace variants from (§4.2's "edited slightly" procedure).
// The traces come from the simulator driven by the fuzzer's own random
// environment scripts, so the properties are checked across every builtin
// specification shape.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "estelle/spec.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/generator.hpp"
#include "runtime/value.hpp"
#include "sim/mutate.hpp"
#include "sim/simulator.hpp"
#include "specs/builtin_specs.hpp"
#include "support/diagnostics.hpp"

namespace tango::sim {
namespace {

tr::Trace simulated_trace(const std::string& name, std::uint32_t seed) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(name));
  std::mt19937 rng(seed);
  SimOptions options;
  options.seed = seed;
  options.max_steps = 160;
  return simulate(spec, fuzz::synthesize_feeds(spec, rng), options).trace;
}

bool same_event(const tr::TraceEvent& a, const tr::TraceEvent& b) {
  if (a.dir != b.dir || a.ip != b.ip || a.interaction != b.interaction ||
      a.params.size() != b.params.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    if (!rt::equals(a.params[i], b.params[i], /*partial=*/false)) return false;
  }
  return true;
}

TEST(MutateProperty, LastOutputMutationChangesExactlyOneIntParamByOne) {
  int qualified = 0;
  for (const std::string& name : fuzz::fuzzable_builtin_specs()) {
    for (std::uint32_t seed = 1; seed <= 4; ++seed) {
      const tr::Trace trace = simulated_trace(name, seed);
      if (!has_mutable_output_param(trace)) continue;
      ++qualified;
      const tr::Trace mutated = mutate_last_output_param(trace);
      ASSERT_EQ(mutated.events().size(), trace.events().size());

      int changed = -1;
      for (std::size_t i = 0; i < trace.events().size(); ++i) {
        if (same_event(trace.events()[i], mutated.events()[i])) continue;
        EXPECT_EQ(changed, -1) << name << " seed " << seed
                               << ": more than one event changed";
        changed = static_cast<int>(i);
      }
      ASSERT_GE(changed, 0) << name << " seed " << seed;
      const tr::TraceEvent& before =
          trace.events()[static_cast<std::size_t>(changed)];
      const tr::TraceEvent& after =
          mutated.events()[static_cast<std::size_t>(changed)];
      EXPECT_EQ(before.dir, tr::Dir::Out);

      int params_changed = 0;
      for (std::size_t p = 0; p < before.params.size(); ++p) {
        if (rt::equals(before.params[p], after.params[p], false)) continue;
        ++params_changed;
        ASSERT_EQ(before.params[p].kind(), rt::Value::Kind::Int);
        EXPECT_EQ(after.params[p].scalar(), before.params[p].scalar() + 1);
      }
      EXPECT_EQ(params_changed, 1);

      // "Last": no later output event carries an integer parameter.
      for (std::size_t i = static_cast<std::size_t>(changed) + 1;
           i < trace.events().size(); ++i) {
        const tr::TraceEvent& e = trace.events()[i];
        if (e.dir != tr::Dir::Out) continue;
        for (const rt::Value& v : e.params) {
          EXPECT_NE(v.kind(), rt::Value::Kind::Int)
              << name << " seed " << seed << ": event " << i
              << " should have been mutated instead";
        }
      }
    }
  }
  EXPECT_GT(qualified, 0) << "no builtin produced a mutable output";
}

TEST(MutateProperty, DropRemovesExactlyTheRequestedEvent) {
  const tr::Trace trace = simulated_trace("abp", 3);
  const std::size_t n = trace.events().size();
  ASSERT_GE(n, 2u);
  const std::uint32_t seq = static_cast<std::uint32_t>(n / 2);
  const tr::Trace dropped = drop_event(trace, seq);
  ASSERT_EQ(dropped.events().size(), n - 1);
  // Remaining events keep their relative order; seqs are contiguous again.
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == seq) continue;
    EXPECT_TRUE(same_event(trace.events()[i], dropped.events()[j])) << i;
    EXPECT_EQ(dropped.events()[j].seq, j);
    ++j;
  }
  EXPECT_EQ(dropped.eof(), trace.eof());
  EXPECT_THROW((void)drop_event(trace, static_cast<std::uint32_t>(n + 7)),
               CompileError);
}

TEST(MutateProperty, SwapExchangesExactlyTwoAdjacentEvents) {
  const tr::Trace trace = simulated_trace("abp", 3);
  const std::size_t n = trace.events().size();
  ASSERT_GE(n, 2u);
  const std::uint32_t at = static_cast<std::uint32_t>(n / 2 - 1);
  const tr::Trace swapped = swap_adjacent(trace, at);
  ASSERT_EQ(swapped.events().size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t expect_from =
        i == at ? at + 1 : (i == at + 1 ? at : i);
    EXPECT_TRUE(same_event(trace.events()[expect_from], swapped.events()[i]))
        << i;
    EXPECT_EQ(swapped.events()[i].seq, i);  // seqs reassigned contiguously
  }
  EXPECT_THROW((void)swap_adjacent(trace, static_cast<std::uint32_t>(n - 1)),
               CompileError);
}

TEST(MutateProperty, TruncateKeepsABoundedPrefix) {
  const tr::Trace trace = simulated_trace("abp", 3);
  const std::size_t n = trace.events().size();
  ASSERT_GE(n, 2u);
  for (std::size_t keep : {std::size_t{0}, n / 2, n, n + 5}) {
    const tr::Trace cut = truncate(trace, keep);
    ASSERT_EQ(cut.events().size(), std::min(n, keep));
    for (std::size_t i = 0; i < cut.events().size(); ++i) {
      EXPECT_TRUE(same_event(trace.events()[i], cut.events()[i])) << i;
    }
    EXPECT_EQ(cut.eof(), trace.eof());
    EXPECT_FALSE(truncate(trace, keep, /*keep_eof=*/false).eof());
  }
}

TEST(MutateProperty, EmptyTraceEdgeCases) {
  tr::Trace empty(1);
  empty.mark_eof();
  EXPECT_FALSE(has_mutable_output_param(empty));
  EXPECT_THROW((void)mutate_last_output_param(empty), CompileError);
  EXPECT_THROW((void)drop_event(empty, 0), CompileError);
  EXPECT_THROW((void)swap_adjacent(empty, 0), CompileError);
  EXPECT_EQ(truncate(empty, 5).events().size(), 0u);
}

TEST(MutateProperty, ParameterlessOutputsAreNotMutable) {
  // ack's only output interaction carries no parameters (Figure 1), so the
  // §4.2 parameter edit is impossible no matter what the simulator emits.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const tr::Trace trace = simulated_trace("ack", seed);
    EXPECT_FALSE(has_mutable_output_param(trace));
    EXPECT_THROW((void)mutate_last_output_param(trace), CompileError);
  }
}

}  // namespace
}  // namespace tango::sim
