// Wire-protocol framing (src/server/framing.hpp): serialize/parse round
// trips for every frame type, the incremental decoder over arbitrary byte
// splits, and the garbage negatives — zero/oversized length prefixes,
// malformed JSON, unknown types and missing required members must all be
// FramingError, never a crash or a silent mis-parse.
#include "server/framing.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tango::srv {
namespace {

Frame round_trip(const Frame& f) { return parse_frame(serialize(f)); }

TEST(Framing, HelloRoundTripCarriesEveryOption) {
  Frame f;
  f.type = FrameType::Hello;
  f.spec = "builtin:abp";
  f.order = "full";
  f.mode = "static";
  f.version = "0.10.0";
  f.hash_states = true;
  f.max_transitions = 123'456;
  f.deadline_ms = 9'000;
  f.max_memory = 1'000'000;
  f.max_depth = 77;
  f.jobs = 4;
  const Frame g = round_trip(f);
  EXPECT_EQ(g.type, FrameType::Hello);
  EXPECT_EQ(g.spec, "builtin:abp");
  EXPECT_EQ(g.order, "full");
  EXPECT_EQ(g.mode, "static");
  EXPECT_EQ(g.version, "0.10.0");
  EXPECT_TRUE(g.hash_states);
  EXPECT_EQ(g.max_transitions, 123'456u);
  EXPECT_EQ(g.deadline_ms, 9'000u);
  EXPECT_EQ(g.max_memory, 1'000'000u);
  EXPECT_EQ(g.max_depth, 77);
  EXPECT_EQ(g.jobs, 4);
}

TEST(Framing, HelloDefaultsApplyWhenMembersAreOmitted) {
  const Frame g = parse_frame(R"({"type":"hello","spec":"builtin:ack"})");
  EXPECT_EQ(g.spec, "builtin:ack");
  EXPECT_EQ(g.order, "io");
  EXPECT_EQ(g.mode, "online");
  EXPECT_FALSE(g.hash_states);
  EXPECT_EQ(g.jobs, 1);
}

TEST(Framing, ChunkRoundTripPreservesArbitraryText) {
  Frame f;
  f.type = FrameType::Chunk;
  f.text = "in u.send(0)\nout n.dt(0, \"x\\\"y\")\n\teof \x01 tail";
  const Frame g = round_trip(f);
  EXPECT_EQ(g.type, FrameType::Chunk);
  EXPECT_EQ(g.text, f.text);
}

TEST(Framing, EofAndCancelRoundTrip) {
  Frame eof;
  eof.type = FrameType::Eof;
  EXPECT_EQ(round_trip(eof).type, FrameType::Eof);
  Frame cancel;
  cancel.type = FrameType::Cancel;
  EXPECT_EQ(round_trip(cancel).type, FrameType::Cancel);
}

TEST(Framing, AcceptedRoundTripCarriesVersionInfo) {
  Frame f;
  f.type = FrameType::Accepted;
  f.version = "0.10.0";
  f.protocol = kProtocolVersion;
  f.schema = 2;
  f.session = 41;
  const Frame g = round_trip(f);
  EXPECT_EQ(g.type, FrameType::Accepted);
  EXPECT_EQ(g.version, "0.10.0");
  EXPECT_EQ(g.protocol, kProtocolVersion);
  EXPECT_EQ(g.schema, 2u);
  EXPECT_EQ(g.session, 41u);
}

TEST(Framing, VerdictRoundTripInterimAndFinal) {
  Frame interim;
  interim.type = FrameType::Verdict;
  interim.status = "valid so far";
  interim.final_verdict = false;
  Frame g = round_trip(interim);
  EXPECT_EQ(g.status, "valid so far");
  EXPECT_FALSE(g.final_verdict);

  Frame fin;
  fin.type = FrameType::Verdict;
  fin.status = "inconclusive";
  fin.final_verdict = true;
  fin.reason = "shutdown";
  g = round_trip(fin);
  EXPECT_EQ(g.status, "inconclusive");
  EXPECT_TRUE(g.final_verdict);
  EXPECT_EQ(g.reason, "shutdown");
}

TEST(Framing, StatsRoundTripEmbedsTheObject) {
  Frame f;
  f.type = FrameType::Stats;
  f.stats_json = R"({"te":12,"ge":3})";
  const Frame g = round_trip(f);
  EXPECT_EQ(g.type, FrameType::Stats);
  EXPECT_NE(g.stats_json.find("\"te\""), std::string::npos);
}

TEST(Framing, ErrorAndOverloadedRoundTripTheirMessage) {
  Frame f;
  f.type = FrameType::Error;
  f.message = "unknown spec 'x'";
  EXPECT_EQ(round_trip(f).message, "unknown spec 'x'");
  f.type = FrameType::Overloaded;
  f.message = "session queue full; retry later";
  const Frame g = round_trip(f);
  EXPECT_EQ(g.type, FrameType::Overloaded);
  EXPECT_EQ(g.message, "session queue full; retry later");
}

// --- negatives ------------------------------------------------------------

TEST(Framing, MalformedJsonIsAFramingError) {
  EXPECT_THROW((void)parse_frame("not json at all"), FramingError);
  EXPECT_THROW((void)parse_frame("{\"type\":"), FramingError);
  EXPECT_THROW((void)parse_frame(""), FramingError);
}

TEST(Framing, UnknownTypeIsAFramingError) {
  EXPECT_THROW((void)parse_frame(R"({"type":"warp-core-breach"})"),
               FramingError);
  EXPECT_THROW((void)parse_frame(R"({"spec":"builtin:abp"})"), FramingError);
}

TEST(Framing, MissingRequiredMembersAreFramingErrors) {
  // hello without spec, chunk without text, verdict without status/final.
  EXPECT_THROW((void)parse_frame(R"({"type":"hello"})"), FramingError);
  EXPECT_THROW((void)parse_frame(R"({"type":"chunk"})"), FramingError);
  EXPECT_THROW((void)parse_frame(R"({"type":"verdict"})"), FramingError);
  EXPECT_THROW((void)parse_frame(R"({"type":"verdict","status":"valid"})"),
               FramingError);
  EXPECT_THROW((void)parse_frame(R"({"type":"stats"})"), FramingError);
}

TEST(Framing, IllTypedMembersAreFramingErrors) {
  EXPECT_THROW((void)parse_frame(R"({"type":"hello","spec":7})"),
               FramingError);
  EXPECT_THROW((void)parse_frame(R"({"type":"hello","spec":"a","jobs":"x"})"),
               FramingError);
  EXPECT_THROW(
      (void)parse_frame(R"({"type":"hello","spec":"a","mode":"psychic"})"),
      FramingError);
}

TEST(FramingDecoder, ReassemblesFramesFromSingleByteFeeds) {
  Frame f;
  f.type = FrameType::Chunk;
  f.text = "in u.send(0)\n";
  const std::string wire = encode_frame(f) + encode_frame(f);
  FrameDecoder d;
  std::string payload;
  int got = 0;
  for (char byte : wire) {
    d.feed(&byte, 1);
    while (d.next(payload)) {
      ++got;
      EXPECT_EQ(parse_frame(payload).text, f.text);
    }
  }
  EXPECT_EQ(got, 2);
  EXPECT_EQ(d.pending(), 0u);
}

TEST(FramingDecoder, PartialFrameStaysPendingUntilComplete) {
  Frame f;
  f.type = FrameType::Eof;
  const std::string wire = encode_frame(f);
  FrameDecoder d;
  std::string payload;
  d.feed(wire.data(), wire.size() - 1);
  EXPECT_FALSE(d.next(payload));
  EXPECT_GT(d.pending(), 0u);
  d.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(d.next(payload));
  EXPECT_EQ(parse_frame(payload).type, FrameType::Eof);
}

TEST(FramingDecoder, ZeroLengthPrefixIsAFramingError) {
  FrameDecoder d;
  d.feed("\x00\x00\x00\x00", 4);
  std::string payload;
  EXPECT_THROW((void)d.next(payload), FramingError);
}

TEST(FramingDecoder, OversizedLengthPrefixIsAFramingError) {
  FrameDecoder d;
  d.feed("\x7f\xff\xff\xff", 4);  // ~2 GiB claimed: reject before allocating
  std::string payload;
  EXPECT_THROW((void)d.next(payload), FramingError);
}

}  // namespace
}  // namespace tango::srv
