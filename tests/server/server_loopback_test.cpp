// End-to-end loopback coverage of the analysis server (docs/SERVER.md):
// verdict parity between served sessions and one-shot analysis for every
// golden x order preset, in single-chunk, trickled and static modes; the
// interim-assessment stream on a slow trickle; overload backpressure;
// cancel; mid-chunk disconnects (clean teardown, checked by the sanitizer
// jobs via label `server`); and per-session fault injection. The server
// runs in-process on an ephemeral port, so tests control the registry,
// session ids and the fault injector directly.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dfs.hpp"
#include "core/fault.hpp"
#include "server/client.hpp"
#include "server/framing.hpp"
#include "server/net.hpp"

namespace tango::srv {
namespace {

struct Golden {
  const char* trace_file;
  const char* spec_ref;
  const char* spec_name;
  const char* expected;  // verdict token, identical across presets
};

constexpr Golden kGoldens[] = {
    {"abp_valid.tr", "builtin:abp", "abp", "valid"},
    {"abp_invalid.tr", "builtin:abp", "abp", "invalid"},
    {"ack_paper.tr", "builtin:ack", "ack", "valid"},
    {"inres_valid.tr", "builtin:inres", "inres", "valid"},
    {"tp0_valid.tr", "builtin:tp0", "tp0", "valid"},
};

constexpr const char* kOrders[] = {"none", "io", "ip", "full"};

std::string read_file(const std::string& name) {
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + name);
  EXPECT_TRUE(file.good()) << name;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

/// One server shared by the whole parity suite; sessions are independent,
/// so reuse just saves 60 startups' worth of spec compilation.
class ServerLoopback : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    auto registry =
        std::make_shared<const SpecRegistry>(SpecRegistry::with_builtins());
    ServerConfig config;
    config.workers = 4;
    server_ = new Server(std::move(registry), config);
    server_->start();
  }
  static void TearDownTestSuite() {
    server_->shutdown();
    delete server_;
    server_ = nullptr;
  }
  static Server* server_;
};

Server* ServerLoopback::server_ = nullptr;

SubmitOptions base_options(const Golden& g, const char* order) {
  SubmitOptions o;
  o.port = ServerLoopback::server_->port();
  o.spec = g.spec_ref;
  o.order = order;
  o.max_transitions = 200'000;
  return o;
}

TEST_F(ServerLoopback, SingleChunkOnlineMatchesOneShotVerdicts) {
  for (const Golden& g : kGoldens) {
    const std::string text = read_file(g.trace_file);
    for (const char* order : kOrders) {
      const SubmitResult r = submit_trace(text, base_options(g, order));
      ASSERT_TRUE(r.completed) << g.trace_file << " " << order << ": "
                               << r.error;
      EXPECT_EQ(r.final_status, g.expected) << g.trace_file << " " << order;
      EXPECT_EQ(r.server_version, "0.10.0");
      EXPECT_NE(r.stats_json.find("\"te\""), std::string::npos)
          << r.stats_json;
    }
  }
}

TEST_F(ServerLoopback, TrickledOnlineMatchesOneShotVerdicts) {
  for (const Golden& g : kGoldens) {
    const std::string text = read_file(g.trace_file);
    for (const char* order : kOrders) {
      SubmitOptions o = base_options(g, order);
      o.chunk_size = 1;  // one event line per chunk frame
      const SubmitResult r = submit_trace(text, o);
      ASSERT_TRUE(r.completed) << g.trace_file << " " << order << ": "
                               << r.error;
      EXPECT_EQ(r.final_status, g.expected) << g.trace_file << " " << order;
    }
  }
}

TEST_F(ServerLoopback, StaticModeMatchesOneShotVerdicts) {
  for (const Golden& g : kGoldens) {
    const std::string text = read_file(g.trace_file);
    for (const char* order : kOrders) {
      SubmitOptions o = base_options(g, order);
      o.mode = "static";
      const SubmitResult r = submit_trace(text, o);
      ASSERT_TRUE(r.completed) << g.trace_file << " " << order << ": "
                               << r.error;
      EXPECT_EQ(r.final_status, g.expected) << g.trace_file << " " << order;
    }
  }
}

TEST_F(ServerLoopback, StaticModeWithJobsRunsTheParallelEngine) {
  const Golden& g = kGoldens[0];
  SubmitOptions o = base_options(g, "io");
  o.mode = "static";
  o.jobs = 4;
  const SubmitResult r = submit_trace(read_file(g.trace_file), o);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.final_status, "valid");
}

TEST_F(ServerLoopback, SlowTrickleReportsInterimAssessments) {
  SubmitOptions o = base_options(kGoldens[0], "io");  // abp_valid
  o.chunk_size = 1;
  o.chunk_delay_ms = 15;  // let MDFS quiesce between growths
  const SubmitResult r = submit_trace(read_file(kGoldens[0].trace_file), o);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.final_status, "valid");
  ASSERT_FALSE(r.interim.empty());
  for (const std::string& s : r.interim) {
    EXPECT_TRUE(s == "valid so far" || s == "likely invalid") << s;
  }
  EXPECT_EQ(r.interim.front(), "valid so far");
}

TEST_F(ServerLoopback, UnknownSpecIsAStructuredError) {
  SubmitOptions o = base_options(kGoldens[0], "io");
  o.spec = "builtin:does-not-exist";
  const SubmitResult r = submit_trace(read_file(kGoldens[0].trace_file), o);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("unknown spec"), std::string::npos) << r.error;
}

TEST_F(ServerLoopback, UnknownOrderIsAStructuredError) {
  SubmitOptions o = base_options(kGoldens[0], "io");
  o.order = "sideways";
  const SubmitResult r = submit_trace(read_file(kGoldens[0].trace_file), o);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("order"), std::string::npos) << r.error;
}

// --- raw-socket tests (drive the wire directly) ---------------------------

/// Minimal raw client for the protocol-shape tests the SubmitOptions
/// surface cannot express (held sessions, cancels, torn chunks).
struct RawClient {
  OwnedFd fd;
  FrameDecoder decoder;

  explicit RawClient(std::uint16_t port) {
    std::string err;
    fd = OwnedFd(connect_to("127.0.0.1", port, err));
    EXPECT_TRUE(fd.valid()) << err;
  }
  bool send(const Frame& f) { return send_all(fd.get(), encode_frame(f)); }
  /// Blocks up to ~2s for the next frame; Error frame with `message` set
  /// "connection closed" when the server hung up first.
  Frame read() {
    std::string payload;
    for (int waited = 0; waited < 2'000;) {
      if (decoder.next(payload)) return parse_frame(payload);
      char buf[4096];
      const int n = recv_some(fd.get(), buf, sizeof(buf), 100);
      if (n == kRecvClosed || n == kRecvError) break;
      if (n == kRecvTimeout) waited += 100;
      if (n > 0) decoder.feed(buf, static_cast<std::size_t>(n));
    }
    Frame f;
    f.type = FrameType::Error;
    f.message = "connection closed";
    return f;
  }
};

Frame hello_frame(const char* spec) {
  Frame h;
  h.type = FrameType::Hello;
  h.spec = spec;
  h.order = "io";
  h.max_transitions = 200'000;
  return h;
}

TEST_F(ServerLoopback, CancelConcludesInconclusiveShutdown) {
  RawClient c(server_->port());
  ASSERT_TRUE(c.send(hello_frame("builtin:abp")));
  EXPECT_EQ(c.read().type, FrameType::Accepted);

  // Feed a prefix (no in-text eof marker), then cancel mid-analysis.
  std::string text = read_file("abp_valid.tr");
  text = text.substr(0, text.find("eof"));
  Frame chunk;
  chunk.type = FrameType::Chunk;
  chunk.text = text;
  ASSERT_TRUE(c.send(chunk));
  Frame cancel;
  cancel.type = FrameType::Cancel;
  ASSERT_TRUE(c.send(cancel));

  Frame f = c.read();
  while (f.type == FrameType::Verdict && !f.final_verdict) f = c.read();
  ASSERT_EQ(f.type, FrameType::Verdict) << f.message;
  EXPECT_TRUE(f.final_verdict);
  EXPECT_EQ(f.status, "inconclusive");
  EXPECT_EQ(f.reason, "shutdown");
  EXPECT_EQ(c.read().type, FrameType::Stats);
}

TEST_F(ServerLoopback, MidChunkDisconnectTearsDownCleanly) {
  const std::uint64_t before = server_->sessions_completed();
  {
    RawClient c(server_->port());
    ASSERT_TRUE(c.send(hello_frame("builtin:abp")));
    EXPECT_EQ(c.read().type, FrameType::Accepted);
    Frame chunk;
    chunk.type = FrameType::Chunk;
    chunk.text = "in u.send(0)\nout n.dt(0,";  // torn mid-event
    ASSERT_TRUE(c.send(chunk));
  }  // ~RawClient closes the socket mid-session

  // The worker must notice the dead peer, conclude and move on; a healthy
  // session afterwards proves the pool survived.
  for (int i = 0; i < 50 && server_->sessions_completed() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(server_->sessions_completed(), before);
  const SubmitResult r = submit_trace(read_file("abp_valid.tr"),
                                      base_options(kGoldens[0], "io"));
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.final_status, "valid");
}

TEST_F(ServerLoopback, GarbageBytesGetAStructuredErrorFrame) {
  RawClient c(server_->port());
  ASSERT_TRUE(send_all(c.fd.get(), std::string("\x00\x00\x00\x04junk", 8)));
  const Frame f = c.read();
  EXPECT_EQ(f.type, FrameType::Error);
  EXPECT_NE(f.message.find("frame"), std::string::npos) << f.message;
}

TEST_F(ServerLoopback, NonHelloFirstFrameIsRejected) {
  RawClient c(server_->port());
  Frame eof;
  eof.type = FrameType::Eof;
  ASSERT_TRUE(c.send(eof));
  const Frame f = c.read();
  EXPECT_EQ(f.type, FrameType::Error);
  EXPECT_NE(f.message.find("hello"), std::string::npos) << f.message;
}

// --- dedicated-server tests (need their own pool shape or session ids) ----

TEST(ServerBackpressure, QueueFullAnswersOverloaded) {
  auto registry =
      std::make_shared<const SpecRegistry>(SpecRegistry::with_builtins());
  ServerConfig config;
  config.workers = 1;
  config.queue_max = 1;
  Server server(std::move(registry), config);
  server.start();

  // Occupy the only worker, then the only queue slot, with held sessions.
  RawClient busy(server.port());
  ASSERT_TRUE(busy.send(hello_frame("builtin:abp")));
  EXPECT_EQ(busy.read().type, FrameType::Accepted);  // a worker claimed it
  RawClient queued(server.port());
  ASSERT_TRUE(queued.send(hello_frame("builtin:abp")));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  SubmitOptions o;
  o.port = server.port();
  o.spec = "builtin:abp";
  const SubmitResult r = submit_trace("eof\n", o);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.overloaded) << r.error;
  EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
  EXPECT_EQ(server.sessions_rejected(), 1u);

  server.shutdown();
}

TEST(ServerShutdown, DrainConcludesInFlightSessionsWithShutdown) {
  auto registry =
      std::make_shared<const SpecRegistry>(SpecRegistry::with_builtins());
  Server server(std::move(registry), ServerConfig{});
  server.start();

  RawClient c(server.port());
  ASSERT_TRUE(c.send(hello_frame("builtin:abp")));
  EXPECT_EQ(c.read().type, FrameType::Accepted);
  // No eof: the session idles on the socket until the drain flips.
  std::thread closer([&server] { server.shutdown(); });

  Frame f = c.read();
  while (f.type == FrameType::Verdict && !f.final_verdict) f = c.read();
  ASSERT_EQ(f.type, FrameType::Verdict) << f.message;
  EXPECT_EQ(f.status, "inconclusive");
  EXPECT_EQ(f.reason, "shutdown");
  c.fd.reset();  // let the worker's linger see the close and join fast
  closer.join();
}

TEST(ServerFaultInjection, ScopedDeadlineFaultConcludesOneSession) {
  if (!core::kFaultInjectionAvailable) {
    GTEST_SKIP() << "fault injection is compiled out in NDEBUG builds";
  }
  core::FaultInjector::instance().configure("deadline@session:1");

  auto registry =
      std::make_shared<const SpecRegistry>(SpecRegistry::with_builtins());
  Server server(std::move(registry), ServerConfig{});
  server.start();

  SubmitOptions o;
  o.port = server.port();
  o.spec = "builtin:abp";
  o.deadline_ms = 600'000;  // arms the governor; the fault forces expiry
  const std::string text = read_file("abp_valid.tr");

  // Session 1 hits the injected deadline; session 2 (same options, out of
  // scope) completes normally — the blast radius is exactly one session.
  const SubmitResult faulted = submit_trace(text, o);
  ASSERT_TRUE(faulted.completed) << faulted.error;
  EXPECT_EQ(faulted.session_id, 1u);
  EXPECT_EQ(faulted.final_status, "inconclusive");
  EXPECT_EQ(faulted.reason, "deadline");

  const SubmitResult healthy = submit_trace(text, o);
  ASSERT_TRUE(healthy.completed) << healthy.error;
  EXPECT_EQ(healthy.session_id, 2u);
  EXPECT_EQ(healthy.final_status, "valid");

  core::FaultInjector::instance().reset();
  server.shutdown();
}

}  // namespace
}  // namespace tango::srv
