// `tango serve` / `tango submit` / `--version` / `analyze -` through the
// real binary (TANGO_CLI_PATH): the parseable listening line, end-to-end
// loopback submits with their exit codes, the SIGTERM graceful drain
// (exit 0 after serving), and the stdin trace path shared with shell
// pipelines.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_shell(const std::string& command) {
  RunResult r;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    r.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

RunResult run_cli(const std::string& args) {
  return run_shell(std::string(TANGO_CLI_PATH) + " " + args);
}

std::string valid_trace() {
  return std::string(TANGO_TRACES_DIR) + "/abp_valid.tr";
}

/// A `tango serve` child on an ephemeral port: forks, parses the
/// listening line for the port, and reaps on destruction.
class ServeProcess {
 public:
  explicit ServeProcess(const char* extra_flag = nullptr) {
    int fds[2];
    if (pipe(fds) != 0) return;
    pid_ = fork();
    if (pid_ == 0) {
      // Exec the binary directly (no shell in between): the SIGTERM test
      // must deliver the signal to `tango serve` itself.
      dup2(fds[1], STDOUT_FILENO);
      dup2(fds[1], STDERR_FILENO);
      close(fds[0]);
      close(fds[1]);
      execl(TANGO_CLI_PATH, TANGO_CLI_PATH, "serve", "--listen=127.0.0.1:0",
            "--workers=2", extra_flag, static_cast<char*>(nullptr));
      _exit(127);
    }
    close(fds[1]);
    out_ = fds[0];
    // First line: "tango <ver> listening on 127.0.0.1:<port> (...)".
    std::string line;
    char ch;
    while (read(out_, &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    const std::size_t colon = line.rfind("127.0.0.1:");
    if (colon != std::string::npos) {
      port_ = static_cast<std::uint16_t>(
          std::strtoul(line.c_str() + colon + 10, nullptr, 10));
    }
    banner_ = line;
  }

  ~ServeProcess() {
    if (out_ >= 0) close(out_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);  // no-op when already reaped by wait()
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  /// Sends SIGTERM (when `term` is set) and reaps; returns the exit code
  /// (-1 on abnormal death).
  int wait(bool term) {
    if (term) kill(pid_, SIGTERM);
    int status = 0;
    if (waitpid(pid_, &status, 0) != pid_) return -1;
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& banner() const { return banner_; }

 private:
  pid_t pid_ = -1;
  int out_ = -1;
  std::uint16_t port_ = 0;
  std::string banner_;
};

TEST(CliVersion, VersionFlagReportsBuildAndProtocol) {
  const RunResult r = run_cli("--version");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tango 0."), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("server protocol"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("events schema"), std::string::npos) << r.output;
  // `tango version` is the spelled-out alias.
  EXPECT_EQ(run_cli("version").output, r.output);
}

TEST(CliStdin, AnalyzeDashReadsTheTraceFromStdin) {
  const RunResult r = run_shell("cat " + valid_trace() + " | " +
                                TANGO_CLI_PATH + " analyze builtin:abp -");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: valid"), std::string::npos) << r.output;
}

TEST(CliServe, BannerIsParseableAndSubmitRoundTrips) {
  ServeProcess serve("--max-sessions=2");
  ASSERT_NE(serve.port(), 0) << serve.banner();
  EXPECT_NE(serve.banner().find("listening on"), std::string::npos);
  EXPECT_NE(serve.banner().find("specs"), std::string::npos);

  const std::string connect =
      " --connect=127.0.0.1:" + std::to_string(serve.port());
  const RunResult valid =
      run_cli("submit " + valid_trace() + connect + " --spec=builtin:abp");
  EXPECT_EQ(valid.exit_code, 0) << valid.output;
  EXPECT_NE(valid.output.find("verdict: valid"), std::string::npos)
      << valid.output;

  const RunResult invalid = run_cli(
      "submit " + std::string(TANGO_TRACES_DIR) + "/abp_invalid.tr" + connect +
      " --spec=builtin:abp");
  EXPECT_EQ(invalid.exit_code, 1) << invalid.output;  // non-valid exits 1

  // --max-sessions=2 served: the daemon exits 0 on its own.
  EXPECT_EQ(serve.wait(/*term=*/false), 0);
}

TEST(CliServe, SigtermDrainsAndExitsZero) {
  ServeProcess serve;
  ASSERT_NE(serve.port(), 0) << serve.banner();
  const RunResult r = run_cli(
      "submit " + valid_trace() + " --connect=127.0.0.1:" +
      std::to_string(serve.port()) + " --spec=builtin:abp --chunk-size=2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(serve.wait(/*term=*/true), 0);
}

TEST(CliSubmit, ConnectionRefusedIsATransportError) {
  // Port 1 on loopback: nothing listens there.
  const RunResult r = run_cli("submit " + valid_trace() +
                              " --connect=127.0.0.1:1 --spec=builtin:abp");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("tango:"), std::string::npos) << r.output;
}

TEST(CliSubmit, MissingConnectFlagIsAUsageError) {
  const RunResult r = run_cli("submit " + valid_trace());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--connect"), std::string::npos) << r.output;
}

}  // namespace
