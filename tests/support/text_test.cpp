#include "support/text.hpp"

#include <gtest/gtest.h>

namespace tango {
namespace {

TEST(Text, IequalsMatchesCaseInsensitively) {
  EXPECT_TRUE(iequals("Estelle", "estelle"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Text, ToLower) {
  EXPECT_EQ(to_lower("MiXeD_09"), "mixed_09");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Text, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("--order=full", "--order="));
  EXPECT_FALSE(starts_with("-o", "--"));
  EXPECT_TRUE(starts_with("x", ""));
}

}  // namespace
}  // namespace tango
