#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace tango {
namespace {

TEST(Diagnostics, SinkCountsErrors) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.note({1, 1}, "informational");
  sink.warn({2, 3}, "suspicious");
  EXPECT_FALSE(sink.has_errors());
  sink.error({4, 5}, "broken");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.all().size(), 3u);
}

TEST(Diagnostics, RenderIncludesLocationAndSeverity) {
  DiagnosticSink sink;
  sink.warn({12, 7}, "odd construct");
  EXPECT_EQ(sink.render(), "12:7: warning: odd construct\n");
}

TEST(Diagnostics, InvalidLocationRendersQuestionMark) {
  Diagnostic d{Severity::Error, {}, "no position"};
  EXPECT_EQ(d.render(), "?: error: no position");
}

TEST(Diagnostics, CompileErrorCarriesLocation) {
  CompileError err({3, 9}, "unexpected token");
  EXPECT_EQ(err.loc().line, 3u);
  EXPECT_STREQ(err.what(), "3:9: unexpected token");
}

TEST(Diagnostics, RuntimeFaultCarriesMessage) {
  RuntimeFault fault({5, 2}, "nil pointer dereference");
  EXPECT_NE(std::string(fault.what()).find("nil pointer"),
            std::string::npos);
}

}  // namespace
}  // namespace tango
