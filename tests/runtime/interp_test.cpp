#include "runtime/interp.hpp"

#include <gtest/gtest.h>

#include "estelle/spec.hpp"

namespace tango::rt {
namespace {

struct Fired {
  int ip;
  int id;
  std::vector<Value> params;
};

class CollectSink final : public OutputSink {
 public:
  bool on_output(int ip, int id, std::vector<Value> params,
                 SourceLoc) override {
    fired.push_back(Fired{ip, id, std::move(params)});
    return true;
  }
  std::vector<Fired> fired;
};

/// Compiles a body around the shared header, runs the initializer and then
/// fires the transition named `t` once per element of `inputs`.
struct Harness {
  explicit Harness(std::string_view body_src,
                   EvalMode mode = EvalMode::Strict)
      : spec(est::compile_spec(
            "specification s;\n"
            "channel CH(A, B);\n"
            "  by A: go; d(v: integer);\n"
            "  by B: r(v: integer);\n"
            "module M systemprocess; ip P: CH(B); end;\n"
            "body MB for M;\n" +
            std::string(body_src) + "\nend;\nend.\n")),
        interp(spec, mode),
        machine(make_initial_machine(spec)) {
    EXPECT_TRUE(
        interp.run_initializer(machine, spec.body().initializers[0], sink));
  }

  const est::Transition& transition(std::string_view name) {
    for (const est::Transition& t : spec.body().transitions) {
      if (t.name == name) return t;
    }
    throw std::runtime_error("no transition " + std::string(name));
  }

  bool fire(std::string_view name, std::vector<Value> when_args = {}) {
    return interp.fire(machine, transition(name), when_args, sink);
  }

  const Value& var(std::string_view name) {
    for (std::size_t i = 0; i < spec.module_vars.size(); ++i) {
      if (spec.module_vars[i].name == name) return machine.vars[i];
    }
    throw std::runtime_error("no var " + std::string(name));
  }

  est::Spec spec;
  Interp interp;
  MachineState machine;
  CollectSink sink;
};

TEST(Interp, InitializerSetsStateAndVars) {
  Harness h(R"(
    var x: integer;
    state a, b;
    initialize to b begin x := 41; end;
)");
  EXPECT_EQ(h.machine.fsm_state, 1);
  EXPECT_EQ(h.var("x").scalar(), 41);
}

TEST(Interp, ArithmeticAndComparison) {
  Harness h(R"(
    var x, y: integer; t: boolean;
    state z;
    initialize to z begin
      x := (3 + 4) * 2 - 5;   { 9 }
      y := x div 2 + x mod 2; { 4 + 1 }
      t := (x > y) and not (x = y);
    end;
)");
  EXPECT_EQ(h.var("x").scalar(), 9);
  EXPECT_EQ(h.var("y").scalar(), 5);
  EXPECT_EQ(h.var("t").as_bool(), true);
}

TEST(Interp, PascalModIsNonNegative) {
  Harness h(R"(
    var a: integer;
    state z;
    initialize to z begin a := (0 - 7) mod 3; end;
)");
  EXPECT_EQ(h.var("a").scalar(), 2);
}

TEST(Interp, WhileRepeatForLoops) {
  Harness h(R"(
    var s, i: integer;
    state z;
    initialize to z begin
      s := 0; i := 0;
      while i < 5 do begin s := s + i; i := i + 1; end; { 0+1+2+3+4 = 10 }
      repeat s := s + 1 until s >= 12;                  { 12 }
      for i := 1 to 3 do s := s + i;                    { 18 }
      for i := 3 downto 1 do s := s - 1;                { 15 }
      for i := 5 to 4 do s := s + 100;                  { empty range }
    end;
)");
  EXPECT_EQ(h.var("s").scalar(), 15);
}

TEST(Interp, CaseSelectsArmAndOtherwise) {
  Harness h(R"(
    var x, y: integer;
    state z;
    initialize to z begin
      x := 2;
      case x of 1: y := 10; 2, 3: y := 20 end;
      case x + 10 of 1: y := 0 otherwise y := y + 1 end;
    end;
)");
  EXPECT_EQ(h.var("y").scalar(), 21);
}

TEST(Interp, CaseWithoutMatchingLabelFaults) {
  EXPECT_THROW(Harness(R"(
    var x, y: integer;
    state z;
    initialize to z begin x := 9; case x of 1: y := 1 end; end;
)"),
               RuntimeFault);
}

TEST(Interp, RecordsArraysAndWholeAssignment) {
  Harness h(R"(
    type Pt = record x, y: integer; end;
    var a, b: Pt; v: array [1 .. 3] of integer; s: integer;
    state z;
    initialize to z begin
      a.x := 3; a.y := 4;
      b := a;
      b.x := 10;
      v[1] := a.x; v[2] := b.x; v[3] := a.y;
      s := v[1] + v[2] + v[3];
    end;
)");
  EXPECT_EQ(h.var("s").scalar(), 17);
  EXPECT_EQ(h.var("a").elems()[0].scalar(), 3);  // deep copy, not aliasing
}

TEST(Interp, ArrayIndexOutOfBoundsFaults) {
  EXPECT_THROW(Harness(R"(
    var v: array [1 .. 3] of integer; i: integer;
    state z;
    initialize to z begin i := 4; v[i] := 1; end;
)"),
               RuntimeFault);
}

TEST(Interp, SubrangeAssignmentRangeChecked) {
  EXPECT_THROW(Harness(R"(
    var s: 0 .. 9;
    state z;
    initialize to z begin s := 10; end;
)"),
               RuntimeFault);
}

TEST(Interp, FunctionsProceduresVarParamsRecursion) {
  Harness h(R"(
    function fact(n: integer): integer;
    begin
      if n <= 1 then fact := 1 else fact := n * fact(n - 1);
    end;
    procedure swap(var a: integer; var b: integer);
    var t: integer;
    begin t := a; a := b; b := t; end;
    var x, y, f: integer;
    state z;
    initialize to z begin
      x := 1; y := 2;
      swap(x, y);
      f := fact(5);
    end;
)");
  EXPECT_EQ(h.var("x").scalar(), 2);
  EXPECT_EQ(h.var("y").scalar(), 1);
  EXPECT_EQ(h.var("f").scalar(), 120);
}

TEST(Interp, RunawayRecursionFaults) {
  EXPECT_THROW(Harness(R"(
    function boom(n: integer): integer;
    begin boom := boom(n + 1); end;
    var x: integer;
    state z;
    initialize to z begin x := boom(0); end;
)"),
               RuntimeFault);
}

TEST(Interp, BuiltinFunctions) {
  Harness h(R"(
    type Color = (red, green, blue);
    var a, b: integer; c: char; col: Color; o: boolean;
    state z;
    initialize to z begin
      a := abs(0 - 5) + ord('A');         { 5 + 65 }
      c := chr(66);
      col := succ(red);
      b := ord(col) + ord(pred(blue));    { 1 + 1 }
      o := odd(a);
    end;
)");
  EXPECT_EQ(h.var("a").scalar(), 70);
  EXPECT_EQ(h.var("c").to_string(), "'B'");
  EXPECT_EQ(h.var("col").to_string(), "green");
  EXPECT_EQ(h.var("b").scalar(), 2);
  EXPECT_EQ(h.var("o").as_bool(), false);
}

TEST(Interp, DynamicMemoryLinkedList) {
  Harness h(R"(
    type L = ^N;
         N = record v: integer; next: L; end;
    var head: L; sum: integer;
    procedure push(x: integer);
    var c: L;
    begin new(c); c^.v := x; c^.next := head; head := c; end;
    state z;
    initialize to z begin
      head := nil;
      push(1); push(2); push(3);
      sum := 0;
      while head <> nil do begin
        sum := sum * 10 + head^.v;
        head := head^.next;
      end;
    end;
)");
  EXPECT_EQ(h.var("sum").scalar(), 321);
  // The loop dropped the cells without dispose: they stay live on the heap.
  EXPECT_EQ(h.machine.heap.live_cells(), 3u);
}

TEST(Interp, DisposeReleasesAndNilFaults) {
  Harness h(R"(
    type P = ^integer;
    var p: P;
    state z;
    initialize to z begin new(p); p^ := 5; dispose(p); end;
)");
  EXPECT_EQ(h.machine.heap.live_cells(), 0u);
  EXPECT_THROW(Harness(R"(
    type P = ^integer;
    var p, q: P; x: integer;
    state z;
    initialize to z begin p := nil; x := p^; end;
)"),
               RuntimeFault);
}

TEST(Interp, DanglingPointerFaults) {
  EXPECT_THROW(Harness(R"(
    type P = ^integer;
    var p, q: P; x: integer;
    state z;
    initialize to z begin new(p); q := p; dispose(p); x := q^; end;
)"),
               RuntimeFault);
}

TEST(Interp, DoubleDisposeFaultsWithDiagnosticMessage) {
  // Releasing through an alias after the cell is gone is a spec error the
  // analyzer must surface, not a silent no-op at the heap layer.
  try {
    Harness h(R"(
    type P = ^integer;
    var p, q: P;
    state z;
    initialize to z begin new(p); q := p; dispose(p); dispose(q); end;
)");
    FAIL() << "double dispose did not fault";
  } catch (const RuntimeFault& fault) {
    EXPECT_NE(std::string(fault.what()).find("double dispose"),
              std::string::npos)
        << fault.what();
  }
}

TEST(Interp, OutputsAreDeliveredInOrder) {
  Harness h(R"(
    state z;
    initialize to z begin output P.r(1); output P.r(2); end;
)");
  ASSERT_EQ(h.sink.fired.size(), 2u);
  EXPECT_EQ(h.sink.fired[0].params[0].scalar(), 1);
  EXPECT_EQ(h.sink.fired[1].params[0].scalar(), 2);
}

TEST(Interp, WhenParamsBindByPosition) {
  Harness h(R"(
    var got: integer;
    state z;
    initialize to z begin got := 0; end;
    trans from z to z when P.d name t: begin got := v; output P.r(v * 2); end;
)");
  ASSERT_TRUE(h.fire("t", {Value::make_int(21)}));
  EXPECT_EQ(h.var("got").scalar(), 21);
  EXPECT_EQ(h.sink.fired.back().params[0].scalar(), 42);
}

TEST(Interp, TransitionChangesFsmState) {
  Harness h(R"(
    state a, b;
    initialize to a begin end;
    trans from a to b when P.go name t: begin end;
          from b to same when P.go name stay: begin end;
)");
  EXPECT_EQ(h.machine.fsm_state, 0);
  ASSERT_TRUE(h.fire("t"));
  EXPECT_EQ(h.machine.fsm_state, 1);
  ASSERT_TRUE(h.fire("stay"));
  EXPECT_EQ(h.machine.fsm_state, 1);  // `to same`
}

TEST(Interp, SinkVetoAbortsFiring) {
  class Veto final : public OutputSink {
   public:
    bool on_output(int, int, std::vector<Value>, SourceLoc) override {
      return false;
    }
  };
  Harness h(R"(
    var x: integer;
    state a, b;
    initialize to a begin x := 0; end;
    trans from a to b when P.go name t: begin x := 1; output P.r(9); end;
)");
  Veto veto;
  EXPECT_FALSE(
      h.interp.fire(h.machine, h.transition("t"), {}, veto));
  // The machine is left dirty (x already assigned) and the FSM state is NOT
  // advanced — callers restore from their saved copy, as the analyzer does.
  EXPECT_EQ(h.machine.fsm_state, 0);
  EXPECT_EQ(h.var("x").scalar(), 1);
}

TEST(Interp, ProvidedEvaluation) {
  Harness h(R"(
    var x: integer;
    state z;
    initialize to z begin x := 5; end;
    trans
      from z to z when P.go provided x > 3 name yes: begin end;
      from z to z when P.go provided x > 9 name no: begin end;
)");
  EXPECT_TRUE(h.interp.provided_holds(h.machine, h.transition("yes"), {}));
  EXPECT_FALSE(h.interp.provided_holds(h.machine, h.transition("no"), {}));
}

TEST(Interp, ProvidedMustBeSideEffectFree) {
  Harness h(R"(
    var x: integer;
    function sneaky: integer;
    begin x := x + 1; sneaky := x; end;
    state z;
    initialize to z begin x := 0; end;
    trans from z to z when P.go provided sneaky > 0 name t: begin end;
)");
  EXPECT_THROW(h.interp.provided_holds(h.machine, h.transition("t"), {}),
               RuntimeFault);
}

TEST(Interp, StrictModeFaultsOnUndefinedUse) {
  EXPECT_THROW(Harness(R"(
    var x, y: integer;
    state z;
    initialize to z begin y := x + 1; end;
)"),
               RuntimeFault);
}

TEST(Interp, PartialModePropagatesUndefined) {
  Harness h(R"(
    var x, y: integer; b: boolean;
    state z;
    initialize to z begin y := x + 1; b := x > 0; end;
)",
            EvalMode::Partial);
  EXPECT_TRUE(h.var("y").is_undefined());
  EXPECT_TRUE(h.var("b").is_undefined());
}

TEST(Interp, PartialModeKleeneLogic) {
  Harness h(R"(
    var u: boolean; a, b, c, d: boolean;
    state z;
    initialize to z begin
      a := u and false;  { definite false }
      b := u or true;    { definite true }
      c := u and true;   { undefined }
      d := not u;        { undefined }
    end;
)",
            EvalMode::Partial);
  EXPECT_EQ(h.var("a").as_bool(), false);
  EXPECT_EQ(h.var("b").as_bool(), true);
  EXPECT_TRUE(h.var("c").is_undefined());
  EXPECT_TRUE(h.var("d").is_undefined());
}

TEST(Interp, PartialModeUndefinedProvidedIsTrue) {
  Harness h(R"(
    var u: integer;
    state z;
    initialize to z begin end;
    trans from z to z when P.go provided u > 5 name t: begin end;
)",
            EvalMode::Partial);
  // Paper §5.1: provided clauses over undefined values are assumed true.
  EXPECT_TRUE(h.interp.provided_holds(h.machine, h.transition("t"), {}));
}

TEST(Interp, PartialModeUndefinedBranchFaultsWithAdvice) {
  try {
    Harness h(R"(
      var u: integer; y: integer;
      state z;
      initialize to z begin if u > 0 then y := 1 else y := 2; end;
)",
              EvalMode::Partial);
    FAIL() << "expected RuntimeFault";
  } catch (const RuntimeFault& e) {
    EXPECT_NE(std::string(e.what()).find("normal-form"), std::string::npos);
  }
}

TEST(Interp, StatementBudgetStopsInfiniteLoops) {
  EXPECT_THROW(Harness(R"(
    var x: integer;
    state z;
    initialize to z begin x := 0; while true do x := x + 1; end;
)"),
               RuntimeFault);
}

TEST(Interp, DivisionByZeroFaults) {
  EXPECT_THROW(Harness(R"(
    var x, y: integer;
    state z;
    initialize to z begin y := 0; x := 1 div y; end;
)"),
               RuntimeFault);
}

}  // namespace
}  // namespace tango::rt
