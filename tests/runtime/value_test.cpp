#include "runtime/value.hpp"

#include <gtest/gtest.h>

#include "estelle/spec.hpp"

namespace tango::rt {
namespace {

TEST(Value, DefaultConstructedIsUndefined) {
  Value v;
  EXPECT_TRUE(v.is_undefined());
  EXPECT_TRUE(v.is_scalar());
  EXPECT_EQ(v.to_string(), "_");
}

TEST(Value, ScalarConstructors) {
  EXPECT_EQ(Value::make_int(-7).scalar(), -7);
  EXPECT_EQ(Value::make_bool(true).to_string(), "true");
  EXPECT_EQ(Value::make_char('q').to_string(), "'q'");
  EXPECT_EQ(Value::nil().to_string(), "nil");
  EXPECT_EQ(Value::make_pointer(3).to_string(), "^3");
}

TEST(Value, EnumPrintsLiteralName) {
  est::TypeArena arena;
  est::Type* color = arena.make(est::TypeKind::Enum);
  color->enum_values = {"red", "green", "blue"};
  EXPECT_EQ(Value::make_enum(color, 1).to_string(), "green");
  EXPECT_EQ(Value::make_enum(color, 7).to_string(), "enum#7");
}

TEST(Value, StructuredToString) {
  Value rec = Value::make_record(
      {Value::make_int(1), Value::make_bool(false)});
  EXPECT_EQ(rec.to_string(), "{1, false}");
  Value arr = Value::make_array({Value::make_int(4), Value{}});
  EXPECT_EQ(arr.to_string(), "[4, _]");
}

TEST(Value, StrictEqualityDeep) {
  Value a = Value::make_record({Value::make_int(1), Value::make_int(2)});
  Value b = Value::make_record({Value::make_int(1), Value::make_int(2)});
  Value c = Value::make_record({Value::make_int(1), Value::make_int(3)});
  EXPECT_TRUE(equals(a, b, false));
  EXPECT_FALSE(equals(a, c, false));
}

TEST(Value, UndefinedEqualsOnlyUndefinedInStrictMode) {
  EXPECT_TRUE(equals(Value{}, Value{}, false));
  EXPECT_FALSE(equals(Value{}, Value::make_int(0), false));
}

TEST(Value, UndefinedIsWildcardInPartialMode) {
  // Paper §5.1: parameters with undefined values are "equal" to all values.
  EXPECT_TRUE(equals(Value{}, Value::make_int(42), true));
  EXPECT_TRUE(equals(Value::make_int(42), Value{}, true));
  Value rec_u = Value::make_record({Value{}, Value::make_int(2)});
  Value rec_d = Value::make_record({Value::make_int(9), Value::make_int(2)});
  EXPECT_TRUE(equals(rec_u, rec_d, true));
  EXPECT_FALSE(equals(rec_u, rec_d, false));
}

TEST(Value, KindMismatchNeverEqual) {
  EXPECT_FALSE(equals(Value::make_int(1), Value::make_bool(true), false));
}

TEST(Value, ContainsUndefined) {
  EXPECT_TRUE(contains_undefined(Value{}));
  EXPECT_FALSE(contains_undefined(Value::make_int(1)));
  Value nested = Value::make_array(
      {Value::make_record({Value::make_int(1), Value{}})});
  EXPECT_TRUE(contains_undefined(nested));
}

TEST(Value, DefaultValueBuildsStructure) {
  est::TypeArena arena;
  est::Type* rec = arena.make(est::TypeKind::Record);
  rec->fields.push_back({"a", arena.integer()});
  rec->fields.push_back({"b", arena.boolean()});
  est::Type* arr = arena.make(est::TypeKind::Array);
  arr->lo = 1;
  arr->hi = 3;
  arr->element = rec;

  Value v = default_value(arr);
  ASSERT_EQ(v.kind(), Value::Kind::Array);
  ASSERT_EQ(v.elems().size(), 3u);
  ASSERT_EQ(v.elems()[0].kind(), Value::Kind::Record);
  EXPECT_TRUE(v.elems()[0].elems()[0].is_undefined());
}

TEST(Value, HashDistinguishesValues) {
  std::uint64_t h1 = 0, h2 = 0, h3 = 0;
  Value::make_int(1).hash_into(h1);
  Value::make_int(2).hash_into(h2);
  Value::make_int(1).hash_into(h3);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, h3);
}

TEST(Value, HashDistinguishesStructure) {
  std::uint64_t flat = 0, nested = 0;
  Value::make_array({Value::make_int(1), Value::make_int(2)})
      .hash_into(flat);
  Value::make_array({Value::make_array({Value::make_int(1)}),
                     Value::make_int(2)})
      .hash_into(nested);
  EXPECT_NE(flat, nested);
}

}  // namespace
}  // namespace tango::rt
