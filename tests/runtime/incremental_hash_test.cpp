// Randomized differential test for the incremental state hash
// (machine.hpp): drive long random mutate/undo sequences — variable
// stores, heap alloc/write/release (with aliasing, cycles and dangling
// pointers), FSM changes, nested Trail mark/undo_to — through exactly the
// hook discipline the interpreter uses (capture the clobbered cache entry,
// log to the Trail, note_var_write, then mutate), asserting after EVERY
// step that hash_cached() equals the full-walk oracle hash(), and after
// every undo that the state hashes equal to a deep copy taken at the mark.
//
// The CursorSet leg (core/search_state.hpp) gets the same treatment:
// random advance/retreat with hash() checked against hash_full().
#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/search_state.hpp"
#include "runtime/trail.hpp"
#include "runtime/value.hpp"

namespace tango::rt {
namespace {

std::uint32_t next_rand(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state >> 8;
}

/// A saved checkpoint: the trail mark plus a deep-copy oracle of the
/// machine and of the live-address bookkeeping at that point.
struct Saved {
  Trail::Mark mark;
  MachineState oracle;
  std::vector<std::uint32_t> live;
};

/// One randomized campaign over a machine with three pointer-free slots
/// (each its own cached component) and three pointer-bearing slots (the
/// joint heap component).
void run_campaign(std::uint32_t seed) {
  constexpr int kPfSlots = 3;
  constexpr int kSlots = 6;

  MachineState m;
  m.fsm_state = 0;
  for (int i = 0; i < kPfSlots; ++i) {
    m.vars.push_back(Value::make_record({Value::make_int(i)}));
  }
  for (int i = kPfSlots; i < kSlots; ++i) m.vars.push_back(Value::nil());
  m.set_pointer_flags({0, 0, 0, 1, 1, 1});

  Trail trail;
  std::vector<std::uint32_t> live;
  std::vector<Saved> marks;
  std::uint32_t rng = seed;

  // Build the cache once up front; every later op must keep it current.
  ASSERT_EQ(m.hash_cached(), m.hash());

  auto random_cell_value = [&]() {
    // Ints, pointers to live cells (aliasing, cycles once stored back into
    // the heap) and nil, so reachability keeps changing shape.
    const std::uint32_t pick = next_rand(rng) % 4;
    if (pick == 0 && !live.empty()) {
      return Value::make_pointer(live[next_rand(rng) % live.size()]);
    }
    if (pick == 1) return Value::nil();
    return Value::make_int(static_cast<std::int64_t>(next_rand(rng) % 64));
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint32_t op = next_rand(rng) % 10;
    if (op < 2) {
      // Store to a pointer-free slot: dirties exactly that component.
      const int slot = static_cast<int>(next_rand(rng)) % kPfSlots;
      trail.log_var(slot, m.vars[slot], m.var_cache_entry(slot));
      m.note_var_write(slot);
      m.vars[slot] = Value::make_record(
          {Value::make_int(static_cast<std::int64_t>(next_rand(rng) % 64))});
    } else if (op < 4) {
      // Store to a pointer-bearing root: dirties the joint heap component.
      const int slot =
          kPfSlots + static_cast<int>(next_rand(rng)) % (kSlots - kPfSlots);
      trail.log_var(slot, m.vars[slot], m.var_cache_entry(slot));
      m.note_var_write(slot);
      m.vars[slot] = random_cell_value();
    } else if (op < 6) {
      // new: capture the heap entry BEFORE the allocation bumps the epoch.
      const CompCache prior = m.heap_cache_entry();
      const std::uint32_t addr = m.heap.allocate(random_cell_value());
      trail.log_heap_alloc(addr, prior);
      live.push_back(addr);
    } else if (op == 6 && !live.empty()) {
      // Write through a pointer: the non-const cell() bumps the epoch, so
      // the prior entry must be captured first (interp.cpp discipline).
      const std::uint32_t addr = live[next_rand(rng) % live.size()];
      const CompCache prior = m.heap_cache_entry();
      Value* cell = m.heap.cell(addr);
      ASSERT_NE(cell, nullptr);
      trail.log_heap_write(addr, *cell, prior);
      *cell = random_cell_value();
    } else if (op == 7 && !live.empty()) {
      // dispose: old contents read through the const heap (no epoch bump
      // before the prior entry is captured). Roots/cells that still point
      // at the address go dangling — the hash must observe that too.
      const std::size_t idx = next_rand(rng) % live.size();
      const std::uint32_t addr = live[idx];
      const CompCache prior = m.heap_cache_entry();
      const Heap& heap = m.heap;
      const Value* old = heap.cell(addr);
      ASSERT_NE(old, nullptr);
      trail.log_heap_release(addr, *old, prior);
      ASSERT_TRUE(m.heap.release(addr));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 8) {
      trail.log_fsm(m.fsm_state);
      m.fsm_state = static_cast<int>(next_rand(rng) % 7);
    } else if (op == 9) {
      if (marks.size() < 4 || next_rand(rng) % 2 == 0) {
        marks.push_back(Saved{trail.mark(), m, live});
      } else {
        // Undo to a random saved mark (drops deeper marks, like a DFS
        // backtracking past them). Restore must be hash-free AND correct:
        // the cached hash must match the deep-copy oracle's full hash.
        const std::size_t pick = next_rand(rng) % marks.size();
        Saved saved = marks[pick];
        marks.resize(pick);
        trail.undo_to(saved.mark, m);
        live = saved.live;
        ASSERT_EQ(m.hash_cached(), saved.oracle.hash())
            << "seed " << seed << " step " << step;
      }
    }
    ASSERT_EQ(m.hash_cached(), m.hash())
        << "seed " << seed << " step " << step << " op " << op;
  }

  // Unwind everything: back to the very first state.
  const MachineState pristine_oracle = marks.empty() ? m : marks[0].oracle;
  if (!marks.empty()) trail.undo_to(marks[0].mark, m);
  trail.undo_to(0, m);
  ASSERT_EQ(m.hash_cached(), m.hash());
  (void)pristine_oracle;
}

TEST(IncrementalHash, RandomizedMutateUndoAgreesWithOracle) {
  for (const std::uint32_t seed : {11u, 23u, 95u, 1995u, 4242u}) {
    run_campaign(seed);
  }
}

TEST(IncrementalHash, UndoToInitialStateRestoresInitialHash) {
  MachineState m;
  m.fsm_state = 1;
  m.vars = {Value::make_int(5), Value::nil()};
  m.set_pointer_flags({0, 1});
  const std::uint64_t h0 = m.hash_cached();
  ASSERT_EQ(h0, m.hash());

  Trail trail;
  const Trail::Mark mark = trail.mark();

  trail.log_var(0, m.vars[0], m.var_cache_entry(0));
  m.note_var_write(0);
  m.vars[0] = Value::make_int(6);

  const CompCache before_alloc = m.heap_cache_entry();
  const std::uint32_t addr = m.heap.allocate(Value::make_int(7));
  trail.log_heap_alloc(addr, before_alloc);

  trail.log_var(1, m.vars[1], m.var_cache_entry(1));
  m.note_var_write(1);
  m.vars[1] = Value::make_pointer(addr);

  EXPECT_NE(m.hash_cached(), h0);
  EXPECT_EQ(m.hash_cached(), m.hash());

  trail.undo_to(mark, m);
  EXPECT_EQ(m.hash_cached(), h0);
  EXPECT_EQ(m.hash_cached(), m.hash());
}

TEST(IncrementalHash, CursorSetMaintainedHashMatchesFull) {
  constexpr int kIps = 5;
  core::CursorSet cursors(kIps);
  EXPECT_EQ(cursors.hash(), cursors.hash_full());

  std::uint32_t rng = 0x7a0u;
  std::vector<int> depth(2 * kIps, 0);
  std::uint64_t initial = cursors.hash();
  for (int step = 0; step < 500; ++step) {
    const int ip = static_cast<int>(next_rand(rng)) % kIps;
    const tr::Dir dir = next_rand(rng) % 2 == 0 ? tr::Dir::In : tr::Dir::Out;
    const std::size_t j =
        static_cast<std::size_t>(ip) +
        (dir == tr::Dir::Out ? static_cast<std::size_t>(kIps) : 0u);
    if (depth[j] > 0 && next_rand(rng) % 3 == 0) {
      cursors.retreat(dir, ip);
      --depth[j];
    } else {
      cursors.advance(dir, ip);
      ++depth[j];
    }
    ASSERT_EQ(cursors.hash(), cursors.hash_full()) << "step " << step;
  }
  // Retreat everything: the maintained fold must land exactly back on the
  // all-zero-cursor hash, not merely on *a* consistent value.
  for (int ip = 0; ip < kIps; ++ip) {
    while (depth[static_cast<std::size_t>(ip)] > 0) {
      cursors.retreat(tr::Dir::In, ip);
      --depth[static_cast<std::size_t>(ip)];
    }
    while (depth[static_cast<std::size_t>(ip + kIps)] > 0) {
      cursors.retreat(tr::Dir::Out, ip);
      --depth[static_cast<std::size_t>(ip + kIps)];
    }
  }
  EXPECT_EQ(cursors.hash(), initial);
  EXPECT_EQ(cursors.hash(), cursors.hash_full());
}

}  // namespace
}  // namespace tango::rt
