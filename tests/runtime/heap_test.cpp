#include "runtime/heap.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "runtime/machine.hpp"

namespace tango::rt {
namespace {

TEST(Heap, AllocateAndLookup) {
  Heap h;
  const std::uint32_t a = h.allocate(Value::make_int(7));
  ASSERT_NE(h.cell(a), nullptr);
  EXPECT_EQ(h.cell(a)->scalar(), 7);
  EXPECT_EQ(h.live_cells(), 1u);
}

TEST(Heap, AddressesAreNeverReused) {
  Heap h;
  const std::uint32_t a = h.allocate(Value::make_int(1));
  ASSERT_TRUE(h.release(a));
  const std::uint32_t b = h.allocate(Value::make_int(2));
  EXPECT_NE(a, b);  // deterministic restore depends on monotonic addresses
}

TEST(Heap, ReleaseUnknownAddressFails) {
  Heap h;
  EXPECT_FALSE(h.release(99));
  const std::uint32_t a = h.allocate(Value::make_int(1));
  EXPECT_TRUE(h.release(a));
  EXPECT_FALSE(h.release(a));  // double dispose
}

TEST(Heap, LookupAfterReleaseIsNull) {
  Heap h;
  const std::uint32_t a = h.allocate(Value::make_int(1));
  h.release(a);
  EXPECT_EQ(h.cell(a), nullptr);
}

TEST(Heap, CopyIsDeep) {
  Heap h;
  const std::uint32_t a = h.allocate(Value::make_int(1));
  Heap copy = h;  // save (§2.3: dynamic memory is part of the TAM state)
  h.cell(a)->elems();  // no-op touch
  *h.cell(a) = Value::make_int(99);
  EXPECT_EQ(copy.cell(a)->scalar(), 1);  // restore point unaffected
}

TEST(Heap, CopyPreservesAllocationCursor) {
  Heap h;
  (void)h.allocate(Value::make_int(1));
  Heap copy = h;
  const std::uint32_t from_orig = h.allocate(Value::make_int(2));
  const std::uint32_t from_copy = copy.allocate(Value::make_int(2));
  // Identical next-address behaviour keeps the search deterministic after
  // a restore.
  EXPECT_EQ(from_orig, from_copy);
}

TEST(Heap, HashReflectsLiveCells) {
  // Cell contents flow into the state hash through the reachability walk
  // in MachineState::hash().
  MachineState a, b;
  a.vars.push_back(Value::make_pointer(a.heap.allocate(Value::make_int(5))));
  b.vars.push_back(Value::make_pointer(b.heap.allocate(Value::make_int(6))));
  EXPECT_NE(a.hash(), b.hash());
}

TEST(MachineState, HashIsCanonicalUnderAllocationOrder) {
  // Regression (hash-pruned DFS, §4.2): two new/dispose interleavings that
  // reach structurally identical states must hash equal. State A allocates
  // a scratch cell first and disposes it, so its live cell sits at address
  // 2; state B allocates directly at address 1.
  MachineState a;
  const std::uint32_t scratch = a.heap.allocate(Value::make_int(0));
  const std::uint32_t a_cell = a.heap.allocate(Value::make_int(5));
  ASSERT_TRUE(a.heap.release(scratch));
  a.vars.push_back(Value::make_pointer(a_cell));

  MachineState b;
  b.vars.push_back(Value::make_pointer(b.heap.allocate(Value::make_int(5))));

  ASSERT_NE(a_cell, b.vars[0].address());  // different absolute addresses
  EXPECT_EQ(a.hash(), b.hash());           // same structure, same hash
}

TEST(MachineState, HashSeesThroughTwoPointersToOneCell) {
  // Aliasing matters: two pointers to ONE cell is a different structure
  // from two pointers to two equal cells.
  MachineState shared;
  const std::uint32_t one = shared.heap.allocate(Value::make_int(7));
  shared.vars.push_back(Value::make_pointer(one));
  shared.vars.push_back(Value::make_pointer(one));

  MachineState split;
  split.vars.push_back(
      Value::make_pointer(split.heap.allocate(Value::make_int(7))));
  split.vars.push_back(
      Value::make_pointer(split.heap.allocate(Value::make_int(7))));

  EXPECT_NE(shared.hash(), split.hash());
}

TEST(MachineState, HashTerminatesOnCyclicStructures) {
  // node^.next := head (a one-cell cycle through a record field).
  MachineState m;
  const std::uint32_t addr = m.heap.allocate(Value::make_record({Value{}}));
  m.heap.cell(addr)->elems()[0] = Value::make_pointer(addr);
  m.vars.push_back(Value::make_pointer(addr));
  const std::uint64_t h = m.hash();  // must not recurse forever
  MachineState copy = m;
  EXPECT_EQ(copy.hash(), h);
}

TEST(MachineState, HashStillSeesLeakedCells) {
  // A leaked (unreachable) cell is part of the memory state; two states
  // that differ only in a leak must not collapse to one hash bucket.
  MachineState reachable_only;
  reachable_only.vars.push_back(Value::nil());
  MachineState leaky = reachable_only;
  (void)leaky.heap.allocate(Value::make_int(1));
  EXPECT_NE(reachable_only.hash(), leaky.hash());
}

TEST(MachineState, HashIsDeterministicAndDiscriminating) {
  MachineState a;
  a.fsm_state = 1;
  a.vars.push_back(Value::make_int(5));
  MachineState b = a;
  EXPECT_EQ(a.hash(), b.hash());

  b.fsm_state = 2;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.vars[0] = Value::make_int(6);
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  (void)b.heap.allocate(Value::make_int(1));
  EXPECT_NE(a.hash(), b.hash());
}

TEST(MachineState, CopyIsIndependent) {
  MachineState a;
  a.vars.push_back(Value::make_record({Value::make_int(1)}));
  const std::uint32_t addr = a.heap.allocate(Value::make_int(9));
  MachineState saved = a;  // the DFS save operation
  a.vars[0].elems()[0] = Value::make_int(2);
  *a.heap.cell(addr) = Value::make_int(10);
  // restore: the snapshot still holds the original values
  EXPECT_EQ(saved.vars[0].elems()[0].scalar(), 1);
  EXPECT_EQ(saved.heap.cell(addr)->scalar(), 9);
}

class HeapModelSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HeapModelSweep, RandomOpsAgreeWithAReferenceModel) {
  // Property: the Heap behaves exactly like a map from addresses to values
  // under arbitrary interleavings of allocate / write / release, and a
  // copy taken at any point is a faithful snapshot.
  std::mt19937 rng(GetParam());
  Heap heap;
  std::map<std::uint32_t, long long> model;
  Heap snapshot;
  std::map<std::uint32_t, long long> snapshot_model;

  for (int step = 0; step < 500; ++step) {
    switch (rng() % 5) {
      case 0: {  // allocate
        const long long v = static_cast<long long>(rng() % 1000);
        const std::uint32_t addr = heap.allocate(Value::make_int(v));
        EXPECT_FALSE(model.count(addr));  // never reuse live addresses
        model[addr] = v;
        break;
      }
      case 1: {  // write through a live address
        if (model.empty()) break;
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng() % model.size()));
        const long long v = static_cast<long long>(rng() % 1000);
        *heap.cell(it->first) = Value::make_int(v);
        it->second = v;
        break;
      }
      case 2: {  // release
        if (model.empty()) break;
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng() % model.size()));
        EXPECT_TRUE(heap.release(it->first));
        model.erase(it);
        break;
      }
      case 3: {  // take a snapshot (the DFS save operation)
        snapshot = heap;
        snapshot_model = model;
        break;
      }
      case 4: {  // restore the snapshot
        heap = snapshot;
        model = snapshot_model;
        break;
      }
    }
    // Invariants after every step.
    EXPECT_EQ(heap.live_cells(), model.size());
    for (const auto& [addr, v] : model) {
      ASSERT_NE(heap.cell(addr), nullptr);
      EXPECT_EQ(heap.cell(addr)->scalar(), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapModelSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace tango::rt
