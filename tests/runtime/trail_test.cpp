// Unit tests for the undo-log checkpointing primitive: undo_to must leave
// the MachineState bit-identical (fsm ordinal, variables, heap contents
// AND allocation cursor) to what a deep copy taken at the mark would
// restore — the copy is the differential oracle throughout.
#include "runtime/trail.hpp"

#include <gtest/gtest.h>

#include <random>

#include "runtime/machine.hpp"

namespace tango::rt {
namespace {

bool same_machine(const MachineState& a, const MachineState& b) {
  if (a.fsm_state != b.fsm_state) return false;
  if (a.vars.size() != b.vars.size()) return false;
  for (std::size_t i = 0; i < a.vars.size(); ++i) {
    if (!equals(a.vars[i], b.vars[i], /*undefined_wildcard=*/false)) {
      return false;
    }
  }
  if (a.heap.live_cells() != b.heap.live_cells()) return false;
  for (const auto& [addr, value] : a.heap.cells()) {
    const Value* other = b.heap.cell(addr);
    if (other == nullptr || !equals(value, *other, false)) return false;
  }
  return true;
}

TEST(Trail, UndoRestoresVariableWrites) {
  MachineState m;
  m.fsm_state = 3;
  m.vars.push_back(Value::make_int(1));
  m.vars.push_back(Value::make_record({Value::make_int(2)}));
  const MachineState oracle = m;

  Trail trail;
  const Trail::Mark mark = trail.mark();
  trail.log_var(0, m.vars[0]);
  m.vars[0] = Value::make_int(99);
  trail.log_var(1, m.vars[1]);
  m.vars[1].elems()[0] = Value::make_int(98);
  trail.log_fsm(m.fsm_state);
  m.fsm_state = 7;

  trail.undo_to(mark, m);
  EXPECT_TRUE(same_machine(m, oracle));
  EXPECT_EQ(trail.size(), 0u);
  EXPECT_EQ(trail.total_logged(), 3u);  // monotone, not decreased by undo
}

TEST(Trail, UndoRevertsAllocateAndRestoresCursor) {
  MachineState m;
  (void)m.heap.allocate(Value::make_int(1));
  const MachineState oracle = m;

  Trail trail;
  const Trail::Mark mark = trail.mark();
  const std::uint32_t a = m.heap.allocate(Value::make_int(2));
  trail.log_heap_alloc(a);
  const std::uint32_t b = m.heap.allocate(Value::make_int(3));
  trail.log_heap_alloc(b);

  trail.undo_to(mark, m);
  EXPECT_TRUE(same_machine(m, oracle));
  // The allocation cursor must rewind too: the next allocation after the
  // undo yields the same address a deep-copy restore would.
  MachineState copy = oracle;
  EXPECT_EQ(m.heap.allocate(Value::make_int(9)),
            copy.heap.allocate(Value::make_int(9)));
}

TEST(Trail, UndoRevertsReleaseWithOldContents) {
  MachineState m;
  const std::uint32_t a = m.heap.allocate(Value::make_int(41));
  const MachineState oracle = m;

  Trail trail;
  const Trail::Mark mark = trail.mark();
  Value old = *m.heap.cell(a);
  trail.log_heap_release(a, std::move(old));
  ASSERT_TRUE(m.heap.release(a));

  trail.undo_to(mark, m);
  EXPECT_TRUE(same_machine(m, oracle));
  ASSERT_NE(m.heap.cell(a), nullptr);
  EXPECT_EQ(m.heap.cell(a)->scalar(), 41);
}

TEST(Trail, NestedMarksUnwindLifo) {
  MachineState m;
  m.vars.push_back(Value::make_int(0));
  const MachineState at_outer = m;

  Trail trail;
  const Trail::Mark outer = trail.mark();
  trail.log_var(0, m.vars[0]);
  m.vars[0] = Value::make_int(1);
  const MachineState at_inner = m;

  const Trail::Mark inner = trail.mark();
  trail.log_var(0, m.vars[0]);
  m.vars[0] = Value::make_int(2);

  trail.undo_to(inner, m);
  EXPECT_TRUE(same_machine(m, at_inner));
  // The inner mark survives a restore: a second sibling redoes and rewinds.
  trail.log_var(0, m.vars[0]);
  m.vars[0] = Value::make_int(3);
  trail.undo_to(inner, m);
  EXPECT_TRUE(same_machine(m, at_inner));

  trail.undo_to(outer, m);
  EXPECT_TRUE(same_machine(m, at_outer));
}

TEST(Trail, RandomMutationSweepAgreesWithDeepCopy) {
  // Property: for random interleavings of variable writes, heap writes,
  // allocations and releases, undo_to(mark) == the deep copy at the mark.
  std::mt19937 rng(2026);
  for (int round = 0; round < 50; ++round) {
    MachineState m;
    m.vars.push_back(Value::make_int(0));
    m.vars.push_back(Value::make_int(0));
    std::vector<std::uint32_t> live;
    for (int i = 0; i < 3; ++i) {
      live.push_back(m.heap.allocate(Value::make_int(i)));
    }
    const MachineState oracle = m;

    Trail trail;
    const Trail::Mark mark = trail.mark();
    for (int step = 0; step < 40; ++step) {
      switch (rng() % 4) {
        case 0: {  // variable write
          const int slot = static_cast<int>(rng() % m.vars.size());
          trail.log_var(slot, m.vars[static_cast<std::size_t>(slot)]);
          m.vars[static_cast<std::size_t>(slot)] =
              Value::make_int(static_cast<std::int64_t>(rng() % 100));
          break;
        }
        case 1: {  // heap cell write
          if (live.empty()) break;
          const std::uint32_t addr = live[rng() % live.size()];
          trail.log_heap_write(addr, *m.heap.cell(addr));
          *m.heap.cell(addr) =
              Value::make_int(static_cast<std::int64_t>(rng() % 100));
          break;
        }
        case 2: {  // allocate
          const std::uint32_t addr = m.heap.allocate(Value::make_int(7));
          trail.log_heap_alloc(addr);
          live.push_back(addr);
          break;
        }
        case 3: {  // release
          if (live.empty()) break;
          const std::size_t pick = rng() % live.size();
          const std::uint32_t addr = live[pick];
          trail.log_heap_release(addr, std::move(*m.heap.cell(addr)));
          ASSERT_TRUE(m.heap.release(addr));
          live.erase(live.begin() + static_cast<long>(pick));
          break;
        }
      }
    }
    trail.undo_to(mark, m);
    ASSERT_TRUE(same_machine(m, oracle)) << "round " << round;
    ASSERT_EQ(m.hash(), oracle.hash()) << "round " << round;
  }
}

}  // namespace
}  // namespace tango::rt
