#include "estelle/sema.hpp"

#include <gtest/gtest.h>

#include "estelle/spec.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::est {
namespace {

Spec compile(std::string_view src) {
  DiagnosticSink sink;
  return compile_spec(src, sink);
}

void expect_error(std::string_view src, std::string_view fragment) {
  try {
    (void)compile(src);
    FAIL() << "expected CompileError containing '" << fragment << "'";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual: " << e.what();
  }
}

constexpr std::string_view kHeader = R"(
specification s;
channel CH(A, B);
  by A: m; d(v: integer);
  by B: r(v: integer);
module M systemprocess; ip P: CH(B); end;
)";

std::string with_body(std::string_view body) {
  return std::string(kHeader) + "body MB for M;\n" + std::string(body) +
         "\nend;\nend.\n";
}

TEST(Sema, ResolvesStatesIpsAndInteractions) {
  Spec spec = compile(with_body(R"(
  state s1, s2;
  initialize to s1 begin end;
  trans from s1 to s2 when P.m name t: begin output P.r(1); end;
)"));
  EXPECT_EQ(spec.states.size(), 2u);
  EXPECT_EQ(spec.state_ordinal("s2"), 1);
  ASSERT_EQ(spec.ips.size(), 1u);
  // Module plays role B: inputs are A's messages, outputs are B's.
  EXPECT_GE(spec.input_id(0, "m"), 0);
  EXPECT_GE(spec.input_id(0, "d"), 0);
  EXPECT_EQ(spec.input_id(0, "r"), -1);
  EXPECT_GE(spec.output_id(0, "r"), 0);
  EXPECT_EQ(spec.output_id(0, "m"), -1);
  const Transition& tr = spec.body().transitions[0];
  EXPECT_EQ(tr.from_ordinals, std::vector<int>{0});
  EXPECT_EQ(tr.to_ordinal, 1);
  EXPECT_EQ(tr.when->ip_index, 0);
}

TEST(Sema, AutoNamesUnnamedTransitions) {
  Spec spec = compile(with_body(R"(
  state s1;
  initialize to s1 begin end;
  trans
    from s1 to s1 when P.m begin end;
    from s1 to s1 when P.d begin end;
)"));
  EXPECT_EQ(spec.body().transitions[0].name, "t1");
  EXPECT_EQ(spec.body().transitions[1].name, "t2");
}

TEST(Sema, RejectsMultipleModules) {
  expect_error(R"(
specification s;
channel CH(A, B); by A: m;
module M1 systemprocess; ip P: CH(B); end;
module M2 systemprocess; ip Q: CH(B); end;
body B1 for M1; state z; initialize to z begin end; end;
end.
)",
               "single-process");
}

TEST(Sema, RejectsDelayClauses) {
  expect_error(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to z delay(3) begin end;
)"),
               "delay");
}

TEST(Sema, RejectsPrimitiveRoutines) {
  expect_error(with_body(R"(
  function f(x: integer): integer; primitive;
  state z;
  initialize to z begin end;
)"),
               "primitive");
}

TEST(Sema, RejectsUnknownState) {
  expect_error(with_body(R"(
  state z;
  initialize to nowhere begin end;
)"),
               "nowhere");
}

TEST(Sema, RejectsWhenOnOutputInteraction) {
  expect_error(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to z when P.r begin end;
)"),
               "not an input");
}

TEST(Sema, RejectsOutputOfInputInteraction) {
  expect_error(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to z begin output P.m; end;
)"),
               "not an output");
}

TEST(Sema, TypeChecksAssignments) {
  expect_error(with_body(R"(
  var x: integer; b: boolean;
  state z;
  initialize to z begin x := true; end;
)"),
               "cannot assign");
}

TEST(Sema, BooleanConditionRequired) {
  expect_error(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin if x then x := 1; end;
)"),
               "must be boolean");
}

TEST(Sema, WhenParamsAreVisibleAndReadOnly) {
  Spec spec = compile(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans from z to z when P.d provided v > 0 name t:
  begin x := v; output P.r(v + 1); end;
)"));
  EXPECT_EQ(spec.body().transitions[0].when->param_types.size(), 1u);
  expect_error(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to z when P.d name t: begin v := 3; end;
)"),
               "not assignable");
}

TEST(Sema, StatesetExpansion) {
  Spec spec = compile(with_body(R"(
  state a, b, c;
  stateset ab = [a, b];
  initialize to a begin end;
  trans from ab to c when P.m name t: begin end;
)"));
  EXPECT_EQ(spec.body().transitions[0].from_ordinals,
            (std::vector<int>{0, 1}));
}

TEST(Sema, ConstAndTypeFixpoint) {
  Spec spec = compile(with_body(R"(
  const n = 3; m = n * 2;
  type Vec = array [0 .. m - 1] of integer;
  var v: Vec;
  state z;
  initialize to z begin v[5] := 1; end;
)"));
  EXPECT_EQ(spec.module_vars[0].type->hi, 5);
}

TEST(Sema, EnumLiteralsBecomeConstants) {
  Spec spec = compile(with_body(R"(
  type Color = (red, green, blue);
  var c: Color;
  state z;
  initialize to z begin c := green; end;
  trans from z to z when P.m provided c = blue name t: begin c := red; end;
)"));
  EXPECT_EQ(spec.module_vars[0].type->kind, TypeKind::Enum);
}

TEST(Sema, RecursiveRecordThroughPointer) {
  Spec spec = compile(with_body(R"(
  type L = ^N;
       N = record v: integer; next: L; end;
  var head: L;
  state z;
  initialize to z begin head := nil; end;
)"));
  const Type* l = spec.module_vars[0].type;
  ASSERT_EQ(l->kind, TypeKind::Pointer);
  ASSERT_NE(l->pointee, nullptr);
  EXPECT_EQ(l->pointee->fields[1].type, l);
}

TEST(Sema, VarParamRequiresExactType) {
  expect_error(with_body(R"(
  type Small = 0 .. 9;
  procedure bump(var x: integer); begin x := x + 1; end;
  var s: Small;
  state z;
  initialize to z begin bump(s); end;
)"),
               "var parameter");
}

TEST(Sema, FunctionResultAssignment) {
  Spec spec = compile(with_body(R"(
  function twice(x: integer): integer;
  begin twice := x * 2; end;
  var y: integer;
  state z;
  initialize to z begin y := twice(21); end;
)"));
  EXPECT_EQ(spec.body().routines[0].result_slot, 1);
}

TEST(Sema, WarnsOnLikelyNonProgressCycle) {
  DiagnosticSink sink;
  (void)compile_spec(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to same name spin: begin end;
)"),
                     sink);
  ASSERT_EQ(sink.all().size(), 1u);
  EXPECT_EQ(sink.all()[0].severity, Severity::Warning);
  EXPECT_NE(sink.all()[0].message.find("non-progress"), std::string::npos);
}

TEST(Sema, NoWarningWhenCycleProducesOutput) {
  DiagnosticSink sink;
  (void)compile_spec(with_body(R"(
  state z;
  initialize to z begin end;
  trans from z to same name ok: begin output P.r(1); end;
)"),
                     sink);
  EXPECT_TRUE(sink.all().empty());
}

TEST(Sema, AllBuiltinSpecsCompile) {
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    DiagnosticSink sink;
    EXPECT_NO_THROW({
      Spec spec = compile_spec(text, sink);
      EXPECT_FALSE(spec.states.empty()) << name;
    }) << "builtin spec: " << name;
  }
}

TEST(Sema, CaseLabelDuplicatesRejected) {
  expect_error(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin
    case x of 1: x := 1; 1: x := 2 end;
  end;
)"),
               "duplicate case label");
}

TEST(Sema, DivisionInConstantsChecked) {
  expect_error(with_body(R"(
  const bad = 1 div 0;
  state z;
  initialize to z begin end;
)"),
               "division by zero");
}

TEST(Sema, DuplicateStateRejected) {
  expect_error(with_body(R"(
  state z, z;
  initialize to z begin end;
)"),
               "duplicate state");
}

TEST(Sema, StatesetWithUnknownMemberRejected) {
  expect_error(with_body(R"(
  state a;
  stateset bad = [a, ghost];
  initialize to a begin end;
)"),
               "ghost");
}

TEST(Sema, OutputArityChecked) {
  expect_error(with_body(R"(
  state z;
  initialize to z begin output P.r; end;
)"),
               "expects 1 parameter");
}

TEST(Sema, FunctionCalledAsProcedureRejected) {
  expect_error(with_body(R"(
  function f: integer; begin f := 1; end;
  state z;
  initialize to z begin f; end;
)"),
               "result must be used");
}

TEST(Sema, UnknownIdentifierInExpression) {
  expect_error(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin x := ghost + 1; end;
)"),
               "unknown identifier");
}

TEST(Sema, IndexingNonArrayRejected) {
  expect_error(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin x := x[1]; end;
)"),
               "non-array");
}

TEST(Sema, DerefNonPointerRejected) {
  expect_error(with_body(R"(
  var x: integer;
  state z;
  initialize to z begin x := x^; end;
)"),
               "non-pointer");
}

TEST(Sema, MissingInitializeRejected) {
  expect_error(with_body(R"(
  state z;
)"),
               "no initialize");
}

TEST(Sema, PointerComparisonAcrossTypesRejected) {
  expect_error(with_body(R"(
  type PA = ^integer; PB = ^boolean;
  var a: PA; b: PB; ok: boolean;
  state z;
  initialize to z begin ok := a = b; end;
)"),
               "unrelated pointer");
}

TEST(Sema, SubrangeBoundsMustBeOrdered) {
  expect_error(with_body(R"(
  type Bad = 9 .. 3;
  state z;
  initialize to z begin end;
)"),
               "empty subrange");
}

}  // namespace
}  // namespace tango::est
