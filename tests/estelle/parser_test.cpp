#include "estelle/parser.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace tango::est {
namespace {

constexpr std::string_view kMinimal = R"(
specification s;
channel CH(A, B);
  by A: ping;
  by B: pong;
module M systemprocess;
  ip P: CH(B);
end;
body MB for M;
  state s0;
  initialize to s0 begin end;
  trans
    from s0 to s0 when P.ping name t1:
    begin output P.pong; end;
end;
end.
)";

TEST(Parser, MinimalSpecification) {
  SpecAst ast = parse(kMinimal);
  EXPECT_EQ(ast.name, "s");
  ASSERT_EQ(ast.channels.size(), 1u);
  ASSERT_EQ(ast.modules.size(), 1u);
  ASSERT_EQ(ast.bodies.size(), 1u);
  EXPECT_EQ(ast.channels[0].roles[0], "a");
  EXPECT_EQ(ast.channels[0].roles[1], "b");
  ASSERT_EQ(ast.channels[0].interactions.size(), 2u);
  EXPECT_TRUE(ast.channels[0].interactions[0].by_role[0]);
  EXPECT_FALSE(ast.channels[0].interactions[0].by_role[1]);
  ASSERT_EQ(ast.modules[0].ips.size(), 1u);
  EXPECT_EQ(ast.modules[0].ips[0].role, "b");
  const BodyDef& body = ast.bodies[0];
  ASSERT_EQ(body.transitions.size(), 1u);
  EXPECT_EQ(body.transitions[0].name, "t1");
  ASSERT_TRUE(body.transitions[0].when.has_value());
  EXPECT_EQ(body.transitions[0].when->ip, "p");
  EXPECT_EQ(body.transitions[0].when->interaction, "ping");
}

TEST(Parser, NamesAreCanonicalizedToLowerCase) {
  SpecAst ast = parse(R"(
specification UPPER;
channel CH(RoleA, RoleB); by RoleA: Msg;
module M systemprocess; ip Q: CH(RoleB); end;
body B for M;
  state IDLE;
  initialize to IDLE begin end;
  trans from IDLE to SAME when Q.MSG begin end;
end;
end.
)");
  EXPECT_EQ(ast.name, "upper");
  EXPECT_EQ(ast.bodies[0].states[0], "idle");
  EXPECT_TRUE(ast.bodies[0].transitions[0].to_same);
}

TEST(Parser, ByTwoRolesMarksBoth) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B);
  by A, B: data(x: integer);
module M systemprocess; ip P: CH(A); end;
body MB for M; state z; initialize to z begin end;
end;
end.
)");
  const InteractionDef& def = ast.channels[0].interactions[0];
  EXPECT_TRUE(def.by_role[0]);
  EXPECT_TRUE(def.by_role[1]);
  ASSERT_EQ(def.params.size(), 1u);
  EXPECT_EQ(def.params[0].name, "x");
}

TEST(Parser, DuplicateByClausesMergeRoles) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B);
  by A: m;
  by B: m;
module M systemprocess; ip P: CH(A); end;
body MB for M; state z; initialize to z begin end; end;
end.
)");
  ASSERT_EQ(ast.channels[0].interactions.size(), 1u);
  EXPECT_TRUE(ast.channels[0].interactions[0].by_role[0]);
  EXPECT_TRUE(ast.channels[0].interactions[0].by_role[1]);
}

TEST(Parser, TypeSections) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  const n = 4;
  type
    Color = (red, green, blue);
    Small = 0 .. n;
    Vec = array [1 .. 3] of integer;
    Pair = record a, b: integer; c: Color; end;
    Link = ^Node;
    Node = record v: integer; next: Link; end;
  var p: Pair; l: Link;
  state z;
  initialize to z begin end;
end;
end.
)");
  const BodyDef& body = ast.bodies[0];
  ASSERT_EQ(body.types.size(), 6u);
  EXPECT_EQ(body.types[0].type->kind, TypeExprKind::Enum);
  EXPECT_EQ(body.types[1].type->kind, TypeExprKind::Subrange);
  EXPECT_EQ(body.types[2].type->kind, TypeExprKind::Array);
  EXPECT_EQ(body.types[3].type->kind, TypeExprKind::Record);
  EXPECT_EQ(body.types[4].type->kind, TypeExprKind::Pointer);
  EXPECT_EQ(body.types[4].type->name, "node");
  ASSERT_EQ(body.types[3].type->fields.size(), 2u);
  EXPECT_EQ(body.types[3].type->fields[0].names.size(), 2u);
}

TEST(Parser, StatementForms) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m; by B: r(v: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x, y: integer; b: boolean;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.m name t:
    var i: integer;
    begin
      x := x + 1;
      if x > 3 then y := 1 else y := 2;
      while x > 0 do x := x - 1;
      repeat y := y + 1 until y >= 5;
      for i := 1 to 3 do y := y + i;
      for i := 3 downto 1 do y := y - 1;
      case y of
        1: x := 10;
        2, 3: x := 20;
        otherwise x := 0
      end;
      output P.r(x * 2)
    end;
end;
end.
)");
  const Transition& tr = ast.bodies[0].transitions[0];
  ASSERT_EQ(tr.locals.size(), 1u);
  const Stmt& block = *tr.block;
  ASSERT_EQ(block.body.size(), 8u);
  EXPECT_EQ(block.body[0]->kind, StmtKind::Assign);
  EXPECT_EQ(block.body[1]->kind, StmtKind::If);
  EXPECT_EQ(block.body[2]->kind, StmtKind::While);
  EXPECT_EQ(block.body[3]->kind, StmtKind::Repeat);
  EXPECT_EQ(block.body[4]->kind, StmtKind::For);
  EXPECT_EQ(block.body[5]->kind, StmtKind::For);
  EXPECT_TRUE(block.body[5]->downto);
  EXPECT_EQ(block.body[6]->kind, StmtKind::Case);
  EXPECT_TRUE(block.body[6]->has_otherwise);
  ASSERT_EQ(block.body[6]->arms.size(), 2u);
  EXPECT_EQ(block.body[6]->arms[1].labels.size(), 2u);
  EXPECT_EQ(block.body[7]->kind, StmtKind::Output);
  EXPECT_EQ(block.body[7]->args.size(), 1u);
}

TEST(Parser, ExpressionPrecedence) {
  ExprPtr e = parse_expression("1 + 2 * 3 = 7");
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Eq);
  const Expr& lhs = *e->children[0];
  EXPECT_EQ(lhs.bin_op, BinOp::Add);
  EXPECT_EQ(lhs.children[1]->bin_op, BinOp::Mul);
}

TEST(Parser, AndBindsTighterThanOr) {
  ExprPtr e = parse_expression("a or b and c");
  EXPECT_EQ(e->bin_op, BinOp::Or);
  EXPECT_EQ(e->children[1]->bin_op, BinOp::And);
}

TEST(Parser, DesignatorChains) {
  ExprPtr e = parse_expression("head^.next^.data");
  EXPECT_EQ(e->kind, ExprKind::Field);
  EXPECT_EQ(e->field, "data");
  EXPECT_EQ(e->children[0]->kind, ExprKind::Deref);
}

TEST(Parser, ArrayIndexAndCall) {
  ExprPtr e = parse_expression("f(a[i + 1], 2)");
  ASSERT_EQ(e->kind, ExprKind::Call);
  ASSERT_EQ(e->children.size(), 2u);
  EXPECT_EQ(e->children[0]->kind, ExprKind::Index);
}

TEST(Parser, RoutineDeclarations) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  function add(a, b: integer): integer;
  begin add := a + b; end;
  procedure bump(var x: integer; d: integer);
  begin x := x + d; end;
  state z;
  initialize to z begin end;
end;
end.
)");
  ASSERT_EQ(ast.bodies[0].routines.size(), 2u);
  EXPECT_TRUE(ast.bodies[0].routines[0].is_function);
  EXPECT_FALSE(ast.bodies[0].routines[1].is_function);
  EXPECT_TRUE(ast.bodies[0].routines[1].params[0].by_ref);
}

TEST(Parser, MultipleFromStatesAndPriority) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state s1, s2, s3;
  stateset busy = [s2, s3];
  initialize to s1 begin end;
  trans
    from s1, busy to s1 when P.m priority 2 name t:
    begin end;
end;
end.
)");
  const Transition& tr = ast.bodies[0].transitions[0];
  EXPECT_EQ(tr.from_states.size(), 2u);
  ASSERT_TRUE(tr.priority.has_value());
  EXPECT_EQ(*tr.priority, 2);
}

TEST(Parser, DelayClauseIsParsedAndFlagged) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z delay(5) name t:
    begin end;
end;
end.
)");
  EXPECT_TRUE(ast.bodies[0].transitions[0].has_delay);
}

TEST(Parser, AnyClauseIsRejected) {
  EXPECT_THROW(parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    any i: integer do from z to z begin end;
end;
end.
)"),
               CompileError);
}

TEST(Parser, SyntaxErrorsCarryLocations) {
  try {
    (void)parse("specification ; x");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.loc().line, 1u);
  }
}

TEST(Parser, TrailingGarbageRejected) {
  EXPECT_THROW(parse(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M; state z; initialize to z begin end; end;
end. extra
)"),
               CompileError);
}

}  // namespace
}  // namespace tango::est
