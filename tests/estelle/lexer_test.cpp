#include "estelle/lexer.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace tango::est {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  std::vector<Token> toks = lex(src);
  EXPECT_FALSE(toks.empty());
  EXPECT_EQ(toks.back().kind, Tok::End);
  return toks;
}

TEST(Lexer, EmptyInputYieldsEndToken) {
  auto toks = lex_ok("");
  EXPECT_EQ(toks.size(), 1u);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto toks = lex_ok("BEGIN Begin begin");
  EXPECT_EQ(toks[0].kind, Tok::KwBegin);
  EXPECT_EQ(toks[1].kind, Tok::KwBegin);
  EXPECT_EQ(toks[2].kind, Tok::KwBegin);
}

TEST(Lexer, IdentifiersKeepSpelling) {
  auto toks = lex_ok("VsValue _tail x9");
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "VsValue");
  EXPECT_EQ(toks[1].text, "_tail");
  EXPECT_EQ(toks[2].text, "x9");
}

TEST(Lexer, IntegerLiterals) {
  auto toks = lex_ok("0 42 123456789");
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456789);
}

TEST(Lexer, IntegerOverflowIsRejected) {
  EXPECT_THROW(lex("99999999999999999999999"), CompileError);
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  auto toks = lex_ok("'a' 'don''t'");
  EXPECT_EQ(toks[0].kind, Tok::StringLit);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "don't");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("'abc"), CompileError);
}

TEST(Lexer, CompoundOperators) {
  auto toks = lex_ok(":= <> <= >= .. . : < >");
  EXPECT_EQ(toks[0].kind, Tok::Assign);
  EXPECT_EQ(toks[1].kind, Tok::Neq);
  EXPECT_EQ(toks[2].kind, Tok::Leq);
  EXPECT_EQ(toks[3].kind, Tok::Geq);
  EXPECT_EQ(toks[4].kind, Tok::DotDot);
  EXPECT_EQ(toks[5].kind, Tok::Dot);
  EXPECT_EQ(toks[6].kind, Tok::Colon);
  EXPECT_EQ(toks[7].kind, Tok::Lt);
  EXPECT_EQ(toks[8].kind, Tok::Gt);
}

TEST(Lexer, BraceCommentsAreSkipped) {
  auto toks = lex_ok("a { this is\na comment } b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, ParenStarCommentsAreSkipped) {
  auto toks = lex_ok("x (* multi\nline *) y");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "y");
}

TEST(Lexer, UnterminatedCommentsThrow) {
  EXPECT_THROW(lex("{ never closed"), CompileError);
  EXPECT_THROW(lex("(* never closed"), CompileError);
}

TEST(Lexer, LineAndColumnTracking) {
  auto toks = lex_ok("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, StrayCharacterThrows) {
  EXPECT_THROW(lex("a $ b"), CompileError);
}

TEST(Lexer, EstelleKeywords) {
  auto toks = lex_ok("specification channel module ip trans when provided "
                     "priority delay stateset initialize output same");
  EXPECT_EQ(toks[0].kind, Tok::KwSpecification);
  EXPECT_EQ(toks[1].kind, Tok::KwChannel);
  EXPECT_EQ(toks[2].kind, Tok::KwModule);
  EXPECT_EQ(toks[3].kind, Tok::KwIp);
  EXPECT_EQ(toks[4].kind, Tok::KwTrans);
  EXPECT_EQ(toks[5].kind, Tok::KwWhen);
  EXPECT_EQ(toks[6].kind, Tok::KwProvided);
  EXPECT_EQ(toks[7].kind, Tok::KwPriority);
  EXPECT_EQ(toks[8].kind, Tok::KwDelay);
  EXPECT_EQ(toks[9].kind, Tok::KwStateset);
  EXPECT_EQ(toks[10].kind, Tok::KwInitialize);
  EXPECT_EQ(toks[11].kind, Tok::KwOutput);
  EXPECT_EQ(toks[12].kind, Tok::KwSame);
}

TEST(Lexer, SlashIsAToken) {
  auto toks = lex_ok("a / b");
  EXPECT_EQ(toks[1].kind, Tok::Slash);
}

}  // namespace
}  // namespace tango::est
