// Pretty-printer round-trip tests: print(parse(x)) must re-parse to an
// equivalent specification, and printing is idempotent after one round.
#include "estelle/printer.hpp"

#include <gtest/gtest.h>

#include "estelle/parser.hpp"
#include "estelle/spec.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::est {
namespace {

TEST(Printer, ExpressionForms) {
  EXPECT_EQ(print_expr(*parse_expression("1 + 2 * 3")), "1 + 2 * 3");
  EXPECT_EQ(print_expr(*parse_expression("(1 + 2) * 3")), "(1 + 2) * 3");
  EXPECT_EQ(print_expr(*parse_expression("not (a or b)")), "not (a or b)");
  EXPECT_EQ(print_expr(*parse_expression("a[i]^.f")), "a[i]^.f");
  EXPECT_EQ(print_expr(*parse_expression("f(x, y + 1)")), "f(x, y + 1)");
  EXPECT_EQ(print_expr(*parse_expression("-x + 3")), "-x + 3");
  EXPECT_EQ(print_expr(*parse_expression("nil")), "nil");
  EXPECT_EQ(print_expr(*parse_expression("'c'")), "'c'");
}

TEST(Printer, PrecedenceIsPreservedOnReparse) {
  for (const char* src :
       {"1 + 2 * 3", "(1 + 2) * 3", "a or b and c", "(a or b) and c",
        "not (x > 1)", "1 - (2 - 3)", "-(x + 1)"}) {
    ExprPtr once = parse_expression(src);
    ExprPtr twice = parse_expression(print_expr(*once));
    EXPECT_EQ(print_expr(*once), print_expr(*twice)) << src;
  }
}

TEST(Printer, RoundTripIsIdempotent) {
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    std::string once = print_spec(parse(text));
    std::string twice = print_spec(parse(once));
    EXPECT_EQ(once, twice) << "builtin: " << name;
  }
}

TEST(Printer, RoundTripPreservesCompiledStructure) {
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    Spec a = compile_spec(text);
    Spec b = compile_spec(print_spec(parse(text)));
    EXPECT_EQ(a.states, b.states) << name;
    EXPECT_EQ(a.ips.size(), b.ips.size()) << name;
    EXPECT_EQ(a.interactions.size(), b.interactions.size()) << name;
    EXPECT_EQ(a.module_vars.size(), b.module_vars.size()) << name;
    EXPECT_EQ(a.body().transitions.size(), b.body().transitions.size())
        << name;
    for (std::size_t i = 0; i < a.body().transitions.size(); ++i) {
      const Transition& ta = a.body().transitions[i];
      const Transition& tb = b.body().transitions[i];
      EXPECT_EQ(ta.name, tb.name) << name;
      EXPECT_EQ(ta.from_ordinals, tb.from_ordinals) << name;
      EXPECT_EQ(ta.to_ordinal, tb.to_ordinal) << name;
      EXPECT_EQ(ta.when.has_value(), tb.when.has_value()) << name;
    }
  }
}

TEST(Printer, StatementRendering) {
  SpecAst ast = parse(R"(
specification s;
channel CH(A, B); by A: m; by B: r(v: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  var x: integer;
  state z;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.m name t:
    begin
      if x > 1 then x := 0 else x := x + 1;
      case x of 0: x := 1; 1, 2: x := 2 otherwise x := 3 end;
      while x > 0 do x := x - 1;
      repeat x := x + 1 until x = 3;
      output P.r(x)
    end;
end;
end.
)");
  const std::string out = print_spec(ast);
  EXPECT_NE(out.find("if x > 1 then"), std::string::npos);
  EXPECT_NE(out.find("case x of"), std::string::npos);
  EXPECT_NE(out.find("otherwise"), std::string::npos);
  EXPECT_NE(out.find("while x > 0 do"), std::string::npos);
  EXPECT_NE(out.find("repeat"), std::string::npos);
  EXPECT_NE(out.find("until x = 3"), std::string::npos);
  EXPECT_NE(out.find("output p.r(x)"), std::string::npos);
  // It must still be parseable.
  EXPECT_NO_THROW((void)compile_spec(out));
}

}  // namespace
}  // namespace tango::est
