// Robustness sweeps: malformed input must produce a CompileError with a
// location — never a crash, hang or silent acceptance. The sweeps mutate
// the built-in specifications deterministically (truncations, token
// deletions, character swaps) and feed garbage to the trace parser.
#include <gtest/gtest.h>

#include "estelle/spec.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::est {
namespace {

/// Compiling arbitrary text must either succeed or throw CompileError.
void must_not_crash(std::string_view text) {
  try {
    DiagnosticSink sink;
    (void)compile_spec(text, sink);
  } catch (const CompileError&) {
    // expected for malformed input
  }
}

class TruncationSweep
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(TruncationSweep, PrefixesNeverCrashTheFrontend) {
  const auto& [name, step] = GetParam();
  const std::string_view text = specs::builtin_spec(name);
  for (std::size_t len = 0; len <= text.size();
       len += static_cast<std::size_t>(step)) {
    must_not_crash(text.substr(0, len));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, TruncationSweep,
    ::testing::Values(std::pair{"ack", 7}, std::pair{"ip3", 11},
                      std::pair{"abp", 13}, std::pair{"inres", 17},
                      std::pair{"tp0", 23}, std::pair{"lapd", 41}),
    [](const auto& info) { return std::string(info.param.first); });

TEST(Robustness, CharacterCorruptionSweep) {
  const std::string base(specs::abp());
  const char replacements[] = {';', '(', '}', '\'', '9', '.', ','};
  for (std::size_t pos = 0; pos < base.size(); pos += 29) {
    for (char c : replacements) {
      std::string mutated = base;
      mutated[pos] = c;
      must_not_crash(mutated);
    }
  }
}

TEST(Robustness, TokenDeletionSweep) {
  const std::string base(specs::ack());
  // Delete 8-character windows across the text.
  for (std::size_t pos = 0; pos + 8 < base.size(); pos += 13) {
    std::string mutated = base.substr(0, pos) + base.substr(pos + 8);
    must_not_crash(mutated);
  }
}

TEST(Robustness, PathologicalInputs) {
  must_not_crash("");
  must_not_crash(";;;;");
  must_not_crash(std::string(10000, '('));
  must_not_crash("specification " + std::string(500, 'x') + ";");
  must_not_crash("{ unterminated comment");
  must_not_crash("specification s; end.");
  std::string deep = "specification s;\nchannel CH(A, B); by A: m;\n"
                     "module M systemprocess; ip P: CH(B); end;\n"
                     "body MB for M;\nvar x: integer;\nstate z;\n"
                     "initialize to z begin x := ";
  deep += std::string(2000, '(') + "1" + std::string(2000, ')');
  deep += "; end;\nend;\nend.\n";
  must_not_crash(deep);  // deep expression nesting: throw or succeed, no UB
}

TEST(Robustness, TraceParserGarbage) {
  est::Spec spec = compile_spec(specs::abp());
  for (const char* line :
       {"in", "out", "in u", "in u.", "in u.send", "in u.send(",
        "in u.send(1", "in u.send(1,", "in u.send(1))", "banana",
        "in u.send(true)", "out m.frame(1)",
        "in u.send(--3)", "in u.send(1) in u.send(2)"}) {
    EXPECT_THROW((void)tr::parse_trace(spec, line), CompileError) << line;
  }
}

TEST(Robustness, TraceTruncationSweep) {
  est::Spec spec = compile_spec(specs::abp());
  const std::string trace =
      "in  u.send(5)\nout m.frame(0, 5)\nin  m.ack(0)\nout u.confirm\n";
  for (std::size_t len = 0; len <= trace.size(); ++len) {
    try {
      (void)tr::parse_trace(spec, trace.substr(0, len));
    } catch (const CompileError&) {
    }
  }
}

}  // namespace
}  // namespace tango::est
