#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"

namespace tango::tr {
namespace {

est::Spec make_spec() {
  return est::compile_spec(R"(
specification s;
channel CH(A, B);
  by A: m; d(v: integer; flag: boolean);
  by B: r(v: integer); rec(p: Pt); arr(xs: Vec); col(c: Color);
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  type Pt = record x, y: integer; end;
       Vec = array [1 .. 2] of integer;
       Color = (red, green, blue);
  state z;
  initialize to z begin end;
end;
end.
)");
}

TEST(Trace, AppendAssignsSeqAndIndexes) {
  est::Spec spec = make_spec();
  Trace t(static_cast<int>(spec.ips.size()));
  TraceEvent a;
  a.dir = Dir::In;
  a.ip = 0;
  a.interaction = spec.input_id(0, "m");
  TraceEvent b = a;
  b.ip = 1;
  b.interaction = spec.input_id(1, "m");
  TraceEvent c;
  c.dir = Dir::Out;
  c.ip = 0;
  c.interaction = spec.output_id(0, "r");
  c.params.push_back(rt::Value::make_int(1));
  t.append(a);
  t.append(b);
  t.append(c);
  EXPECT_EQ(t.events()[0].seq, 0u);
  EXPECT_EQ(t.events()[2].seq, 2u);
  EXPECT_EQ(t.list(0, Dir::In), std::vector<std::uint32_t>{0});
  EXPECT_EQ(t.list(1, Dir::In), std::vector<std::uint32_t>{1});
  EXPECT_EQ(t.list(0, Dir::Out), std::vector<std::uint32_t>{2});
  EXPECT_TRUE(t.list(1, Dir::Out).empty());
}

TEST(TraceIo, ParseSimpleEvents) {
  est::Spec spec = make_spec();
  Trace t = parse_trace(spec, R"(
# a comment line

in  P.m
in  Q.d(7, true)
out P.r(42)
)");
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_TRUE(t.eof());  // assume_eof default
  EXPECT_EQ(t.events()[1].params[0].scalar(), 7);
  EXPECT_EQ(t.events()[1].params[1].as_bool(), true);
  EXPECT_EQ(t.events()[2].dir, Dir::Out);
}

TEST(TraceIo, EofMarkerHandling) {
  est::Spec spec = make_spec();
  Trace t = parse_trace(spec, "in P.m\n", /*assume_eof=*/false);
  EXPECT_FALSE(t.eof());
  Trace t2 = parse_trace(spec, "in P.m\neof\n", /*assume_eof=*/false);
  EXPECT_TRUE(t2.eof());
  EXPECT_THROW(parse_trace(spec, "eof\nin P.m\n"), CompileError);
}

TEST(TraceIo, StructuredValues) {
  est::Spec spec = make_spec();
  Trace t = parse_trace(spec,
                        "out P.rec((3, 4))\n"
                        "out P.arr([10, 20])\n"
                        "out P.col(green)\n");
  ASSERT_EQ(t.events().size(), 3u);
  const rt::Value& rec = t.events()[0].params[0];
  ASSERT_EQ(rec.kind(), rt::Value::Kind::Record);
  EXPECT_EQ(rec.elems()[1].scalar(), 4);
  const rt::Value& arr = t.events()[1].params[0];
  ASSERT_EQ(arr.kind(), rt::Value::Kind::Array);
  EXPECT_EQ(arr.elems()[0].scalar(), 10);
  EXPECT_EQ(t.events()[2].params[0].to_string(), "green");
}

TEST(TraceIo, UndefinedPlaceholder) {
  est::Spec spec = make_spec();
  Trace t = parse_trace(spec, "in Q.d(_, true)\n");
  EXPECT_TRUE(t.events()[0].params[0].is_undefined());
}

TEST(TraceIo, NegativeIntegers) {
  est::Spec spec = make_spec();
  Trace t = parse_trace(spec, "out P.r(-5)\n");
  EXPECT_EQ(t.events()[0].params[0].scalar(), -5);
}

TEST(TraceIo, RoundTripThroughText) {
  est::Spec spec = make_spec();
  // Names are canonicalized to lower case, so the round trip is exact only
  // for lower-case input.
  const std::string original =
      "in  p.m\n"
      "in  q.d(7, false)\n"
      "out p.rec((1, 2))\n"
      "out p.arr([3, 4])\n"
      "out p.col(blue)\n"
      "eof\n";
  Trace t = parse_trace(spec, original, /*assume_eof=*/false);
  EXPECT_EQ(to_text(spec, t), original);
}

TEST(TraceIo, RejectsUnknownIpAndInteraction) {
  est::Spec spec = make_spec();
  EXPECT_THROW(parse_trace(spec, "in X.m\n"), CompileError);
  EXPECT_THROW(parse_trace(spec, "in P.nosuch\n"), CompileError);
  // r is an output of P, not an input.
  EXPECT_THROW(parse_trace(spec, "in P.r(1)\n"), CompileError);
}

TEST(TraceIo, RejectsArityAndTypeErrors) {
  est::Spec spec = make_spec();
  EXPECT_THROW(parse_trace(spec, "in Q.d(7)\n"), CompileError);
  EXPECT_THROW(parse_trace(spec, "in Q.d(7, 8)\n"), CompileError);
  EXPECT_THROW(parse_trace(spec, "in Q.d\n"), CompileError);
  EXPECT_THROW(parse_trace(spec, "out P.col(mauve)\n"), CompileError);
  EXPECT_THROW(parse_trace(spec, "out P.r(1) trailing\n"), CompileError);
}

TEST(MemoryFeed, DeliversPushedEventsOnPoll) {
  est::Spec spec = make_spec();
  MemoryFeed feed(spec);
  Trace t(static_cast<int>(spec.ips.size()));
  EXPECT_FALSE(feed.poll(t));
  feed.push_line("in P.m");
  feed.push_line("# comment");
  feed.push_line("out P.r(3)");
  EXPECT_TRUE(feed.poll(t));
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_FALSE(feed.poll(t));
  feed.push_line("eof");
  EXPECT_TRUE(feed.poll(t));
  EXPECT_TRUE(t.eof());
  EXPECT_FALSE(feed.poll(t));
}

TEST(FileFollower, ReadsIncrementally) {
  est::Spec spec = make_spec();
  const std::string path = testing::TempDir() + "/tango_follow_test.tr";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "in P.m\n";
  }
  FileFollower follower(spec, path);
  Trace t(static_cast<int>(spec.ips.size()));
  EXPECT_TRUE(follower.poll(t));
  EXPECT_EQ(t.events().size(), 1u);
  EXPECT_FALSE(follower.poll(t));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "out P.r(1)\nin P.";  // second line incomplete
  }
  EXPECT_TRUE(follower.poll(t));
  EXPECT_EQ(t.events().size(), 2u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "m\neof\n";  // completes the carried line, then eof
  }
  EXPECT_TRUE(follower.poll(t));
  EXPECT_EQ(t.events().size(), 3u);
  // eof arrives on a later poll because the parser stops at the marker.
  if (!t.eof()) follower.poll(t);
  EXPECT_TRUE(t.eof());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tango::tr
