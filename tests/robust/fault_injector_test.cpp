// Unit coverage for the fault-injection hook itself (src/core/fault.hpp):
// the spec grammar, per-site probe counters, Nth-probe entries, scope
// matching, and malformed-spec rejection. Everything here skips in NDEBUG
// builds, where the probes compile to constant false.
#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tango::core {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionAvailable) {
      GTEST_SKIP() << "fault injection is compiled out in NDEBUG builds";
    }
    FaultInjector::instance().reset();
  }
  void TearDown() override {
    if (kFaultInjectionAvailable) FaultInjector::instance().reset();
  }
};

TEST_F(FaultInjectorTest, DisarmedProbesNeverFire) {
  auto& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_FALSE(fi.should_fire(FaultSite::TraceRead));
  EXPECT_FALSE(fi.should_fire(FaultSite::Deadline));
  // Disarmed probes bail before the counter: the hot path costs one load.
  EXPECT_EQ(fi.probes(FaultSite::Alloc), 0u);
  EXPECT_EQ(fi.probes(FaultSite::TraceRead), 0u);
}

TEST_F(FaultInjectorTest, BareSiteFiresEveryProbeOfThatSiteOnly) {
  auto& fi = FaultInjector::instance();
  fi.configure("trace-read");
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.should_fire(FaultSite::TraceRead));
  EXPECT_TRUE(fi.should_fire(FaultSite::TraceRead));
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_FALSE(fi.should_fire(FaultSite::Deadline));
}

TEST_F(FaultInjectorTest, CountedEntryFiresOnlyTheNthProbe) {
  auto& fi = FaultInjector::instance();
  fi.configure("alloc:3");
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_TRUE(fi.should_fire(FaultSite::Alloc));
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_EQ(fi.probes(FaultSite::Alloc), 4u);
}

TEST_F(FaultInjectorTest, ScopedEntryFiresOnlyInsideItsScope) {
  auto& fi = FaultInjector::instance();
  fi.configure("deadline@item:2");
  EXPECT_FALSE(fi.should_fire(FaultSite::Deadline));  // no scope installed
  {
    FaultScope scope("item:1");
    EXPECT_FALSE(fi.should_fire(FaultSite::Deadline));
  }
  {
    FaultScope scope("item:2");
    EXPECT_EQ(FaultScope::current(), "item:2");
    EXPECT_TRUE(fi.should_fire(FaultSite::Deadline));
  }
  EXPECT_EQ(FaultScope::current(), "");
  EXPECT_FALSE(fi.should_fire(FaultSite::Deadline));
}

TEST_F(FaultInjectorTest, ScopesNestAndRestore) {
  FaultScope outer("item:0");
  {
    FaultScope inner("item:7");
    EXPECT_EQ(FaultScope::current(), "item:7");
  }
  EXPECT_EQ(FaultScope::current(), "item:0");
}

TEST_F(FaultInjectorTest, CommaListArmsSeveralEntries) {
  auto& fi = FaultInjector::instance();
  fi.configure("alloc:1,trace-read");
  EXPECT_TRUE(fi.should_fire(FaultSite::Alloc));
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_TRUE(fi.should_fire(FaultSite::TraceRead));
}

TEST_F(FaultInjectorTest, ConfigureResetsCounters) {
  auto& fi = FaultInjector::instance();
  fi.configure("alloc:2");
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  fi.configure("alloc:2");  // counter restarts: first probe is #1 again
  EXPECT_FALSE(fi.should_fire(FaultSite::Alloc));
  EXPECT_TRUE(fi.should_fire(FaultSite::Alloc));
}

TEST_F(FaultInjectorTest, MalformedSpecsAreRejected) {
  auto& fi = FaultInjector::instance();
  EXPECT_THROW(fi.configure("bogus-site"), std::invalid_argument);
  EXPECT_THROW(fi.configure("alloc:"), std::invalid_argument);
  EXPECT_THROW(fi.configure("alloc:0"), std::invalid_argument);
  EXPECT_THROW(fi.configure("alloc:notanumber"), std::invalid_argument);
  EXPECT_THROW(fi.configure("@scope"), std::invalid_argument);
  // A rejected spec must not leave a half-armed injector behind.
  fi.configure("trace-read");
  EXPECT_THROW(fi.configure("nope"), std::invalid_argument);
  EXPECT_TRUE(fi.should_fire(FaultSite::TraceRead));
}

}  // namespace
}  // namespace tango::core
