// Resource-governance matrix (docs/ROBUSTNESS.md): every engine that can
// run out of a budget must say WHICH budget it ran out of. Each cell runs
// an engine against a workload with one budget set to its minimum and
// asserts the Inconclusive verdict carries the matching structured reason
// on the result, in Stats::to_json, and on the verdict event.
#include <gtest/gtest.h>

#include <string>

#include "core/dfs.hpp"
#include "core/fault.hpp"
#include "core/mdfs.hpp"
#include "core/parallel_dfs.hpp"
#include "obs/sink.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::core {
namespace {

est::Spec tp0_spec() { return est::compile_spec(specs::builtin_spec("tp0")); }

/// The §4.2 invalid TP0 trace: two valid interleavings per round make the
/// refutation tree exponential in n, so every budget trips mid-search.
tr::Trace branching_invalid_trace(const est::Spec& spec, int n) {
  return sim::mutate_last_output_param(sim::tp0_paper_trace(spec, n));
}

enum class EngineKind { Dfs, HashDfs, ParRelaxed, ParDet };

const char* name_of(EngineKind k) {
  switch (k) {
    case EngineKind::Dfs: return "dfs";
    case EngineKind::HashDfs: return "hash-dfs";
    case EngineKind::ParRelaxed: return "par-relaxed";
    case EngineKind::ParDet: return "par-det";
  }
  return "?";
}

DfsResult run_engine(EngineKind k, const est::Spec& spec,
                     const tr::Trace& trace, Options options) {
  switch (k) {
    case EngineKind::HashDfs:
      options.hash_states = true;
      return analyze(spec, trace, options);
    case EngineKind::ParRelaxed:
      options.jobs = 4;
      return analyze_parallel(spec, trace, options);
    case EngineKind::ParDet:
      options.jobs = 4;
      options.deterministic = true;
      return analyze_parallel(spec, trace, options);
    case EngineKind::Dfs:
      break;
  }
  return analyze(spec, trace, options);
}

constexpr EngineKind kEngines[] = {EngineKind::Dfs, EngineKind::HashDfs,
                                   EngineKind::ParRelaxed, EngineKind::ParDet};

void expect_reason(const DfsResult& r, InconclusiveReason want,
                   const std::string& where) {
  EXPECT_EQ(r.verdict, Verdict::Inconclusive) << where;
  EXPECT_EQ(r.reason, want) << where;
  EXPECT_EQ(r.stats.reason, want) << where;
  // Satellite: the reason must survive into the JSON stats block.
  EXPECT_NE(r.stats.to_json().find("\"reason\":\"" +
                                   std::string(to_string(want)) + "\""),
            std::string::npos)
      << where;
}

TEST(InconclusiveReason, TransitionBudgetNamesTransitions) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (EngineKind k : kEngines) {
    Options options = Options::io();
    options.max_transitions = 1;
    expect_reason(run_engine(k, spec, trace, options),
                  InconclusiveReason::Transitions, name_of(k));
  }
}

TEST(InconclusiveReason, DepthClipNamesDepth) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (EngineKind k : kEngines) {
    Options options = Options::io();
    options.max_depth = 1;
    expect_reason(run_engine(k, spec, trace, options),
                  InconclusiveReason::Depth, name_of(k));
  }
}

TEST(InconclusiveReason, MemoryBudgetNamesMemory) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (EngineKind k : kEngines) {
    Options options = Options::io();
    options.max_memory = 1;  // any state preservation at all exceeds this
    expect_reason(run_engine(k, spec, trace, options),
                  InconclusiveReason::Memory, name_of(k));
  }
}

TEST(InconclusiveReason, WallClockDeadlineNamesDeadline) {
  // Real clock, no injection: a workload whose refutation takes far longer
  // than the 1 ms deadline. The governor stops it within one clock-sample
  // stride, so the test itself stays fast.
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 12);
  for (EngineKind k : kEngines) {
    if (k == EngineKind::HashDfs) continue;  // §4.2 pruning collapses the
    // tree and the run finishes inside the deadline; the injected test
    // below covers hash-dfs deterministically.
    Options options = Options::io();
    options.deadline_ms = 1;
    expect_reason(run_engine(k, spec, trace, options),
                  InconclusiveReason::Deadline, name_of(k));
  }
}

TEST(InconclusiveReason, InjectedDeadlineNamesDeadline) {
  if (!kFaultInjectionAvailable) {
    GTEST_SKIP() << "fault injection is compiled out in NDEBUG builds";
  }
  FaultInjector::instance().configure("deadline");
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (EngineKind k : kEngines) {
    Options options = Options::io();
    options.deadline_ms = 60'000;  // armed but hours away; injection fires it
    expect_reason(run_engine(k, spec, trace, options),
                  InconclusiveReason::Deadline, name_of(k));
  }
  FaultInjector::instance().reset();
}

TEST(InconclusiveReason, VerdictEventCarriesReason) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (EngineKind k : kEngines) {
    obs::MemorySink sink;
    Options options = Options::io();
    options.max_transitions = 1;
    options.sink = &sink;
    (void)run_engine(k, spec, trace, options);
    bool saw_verdict = false;
    for (const obs::Event& e : sink.events()) {
      if (e.kind != obs::EventKind::Verdict) continue;
      saw_verdict = true;
      EXPECT_EQ(e.verdict, "inconclusive") << name_of(k);
      EXPECT_EQ(e.reason, "transitions") << name_of(k);
    }
    EXPECT_TRUE(saw_verdict) << name_of(k);
  }
}

TEST(InconclusiveReason, ConclusiveVerdictsCarryNoReason) {
  est::Spec spec = tp0_spec();
  tr::Trace valid = sim::tp0_paper_trace(spec, 4);
  for (EngineKind k : kEngines) {
    obs::MemorySink sink;
    Options options = Options::io();
    options.sink = &sink;
    const DfsResult r = run_engine(k, spec, valid, options);
    EXPECT_EQ(r.verdict, Verdict::Valid) << name_of(k);
    EXPECT_EQ(r.reason, InconclusiveReason::None) << name_of(k);
    EXPECT_EQ(r.stats.to_json().find("\"reason\""), std::string::npos)
        << name_of(k);
    for (const obs::Event& e : sink.events()) {
      if (e.kind == obs::EventKind::Verdict) {
        EXPECT_TRUE(e.reason.empty()) << name_of(k);
      }
    }
  }
}

// --- MDFS (on-line) ------------------------------------------------------

struct Online {
  explicit Online(std::string_view spec_text, Options opts)
      : spec(est::compile_spec(spec_text)), feed(spec) {
    OnlineConfig config;
    config.options = opts;
    analyzer = std::make_unique<OnlineAnalyzer>(spec, feed, config);
  }
  est::Spec spec;
  tr::MemoryFeed feed;
  std::unique_ptr<OnlineAnalyzer> analyzer;
};

void feed_ack_workload(Online& o) {
  for (const char* line :
       {"in a.x", "in a.x", "in a.x", "in b.y", "out a.ack"}) {
    o.feed.push_line(line);
  }
}

TEST(InconclusiveReason, MdfsTransitionBudgetNamesTransitions) {
  Options options = Options::none();
  options.max_transitions = 1;
  Online o(specs::ack(), options);
  feed_ack_workload(o);
  EXPECT_EQ(o.analyzer->step_round(100000), OnlineStatus::Inconclusive);
  EXPECT_EQ(o.analyzer->stats().reason, InconclusiveReason::Transitions);
}

TEST(InconclusiveReason, MdfsMemoryBudgetNamesMemory) {
  Options options = Options::none();
  options.max_memory = 1;
  Online o(specs::ack(), options);
  feed_ack_workload(o);
  EXPECT_EQ(o.analyzer->step_round(100000), OnlineStatus::Inconclusive);
  EXPECT_EQ(o.analyzer->stats().reason, InconclusiveReason::Memory);
}

TEST(InconclusiveReason, MdfsInjectedDeadlineNamesDeadline) {
  if (!kFaultInjectionAvailable) {
    GTEST_SKIP() << "fault injection is compiled out in NDEBUG builds";
  }
  FaultInjector::instance().configure("deadline");
  Options options = Options::none();
  options.deadline_ms = 60'000;
  Online o(specs::ack(), options);
  feed_ack_workload(o);
  EXPECT_EQ(o.analyzer->step_round(100000), OnlineStatus::Inconclusive);
  EXPECT_EQ(o.analyzer->stats().reason, InconclusiveReason::Deadline);
  FaultInjector::instance().reset();
}

}  // namespace
}  // namespace tango::core
