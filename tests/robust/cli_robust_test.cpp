// CLI hardening (exercises the real `tango` binary): the validating
// numeric-flag parsers (bad/overflowing values are usage errors, exit 2,
// never a std::stoi crash), the --visited-max-without---hash-states
// diagnosis, and the resource flags' end-to-end surface (reason line,
// batch JSON). TANGO_CLI_PATH and TANGO_TRACES_DIR come from CMake.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_cli(const std::string& args) {
  const std::string command = std::string(TANGO_CLI_PATH) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    r.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string valid_trace() {
  return std::string(TANGO_TRACES_DIR) + "/abp_valid.tr";
}

TEST(CliRobust, NonNumericFlagValueIsAUsageError) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --jobs=abc");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--jobs"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("abc"), std::string::npos) << r.output;
}

TEST(CliRobust, NegativeFlagValueIsAUsageError) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --max-depth=-5");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("non-negative"), std::string::npos) << r.output;
}

TEST(CliRobust, OverflowingFlagValueIsAUsageErrorNotACrash) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --max-depth=99999999999999999999999");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("out of range"), std::string::npos) << r.output;
}

TEST(CliRobust, EmptyFlagValueIsAUsageError) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --deadline=");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(CliRobust, VisitedMaxWithoutHashStatesIsDiagnosed) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --visited-max=100");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("--hash-states"), std::string::npos) << r.output;
}

TEST(CliRobust, VisitedMaxWithHashStatesIsAccepted) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --hash-states --visited-max=100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: valid"), std::string::npos) << r.output;
}

TEST(CliRobust, ExhaustedBudgetPrintsItsReason) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --max-transitions=1");
  EXPECT_EQ(r.exit_code, 1) << r.output;  // non-valid verdicts exit 1
  EXPECT_NE(r.output.find("verdict: inconclusive"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("reason:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("transitions"), std::string::npos) << r.output;
}

TEST(CliRobust, ResourceFlagsAreAccepted) {
  const RunResult r = run_cli("analyze builtin:abp " + valid_trace() +
                              " --deadline=60000 --max-memory=100000000");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: valid"), std::string::npos) << r.output;
}

TEST(CliRobust, BatchJsonReportsPerItemVerdicts) {
  const RunResult r = run_cli(
      "analyze builtin:abp --batch " + std::string(TANGO_TRACES_DIR) +
      " --format=json --deadline=60000 --item-retries=1");
  // The corpus mixes specs, so foreign traces are per-item errors — the
  // batch still completes and reports every file.
  EXPECT_NE(r.output.find("\"items\":["), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("abp_valid.tr"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"verdict\":\"valid\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"summary\":"), std::string::npos) << r.output;
}

// A malformed step field in a simulate script used to surface as a bare
// std::stoull exception ("tango: stoull"); it is now a positioned
// diagnostic naming the offending token.
TEST(CliRobust, SimulateScriptBadStepIsAPositionedDiagnostic) {
  const std::filesystem::path script =
      std::filesystem::path(testing::TempDir()) / "cli_robust_bad.script";
  {
    FILE* f = fopen(script.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("abc u.send(0)\n", f);
    fclose(f);
  }
  const RunResult r =
      run_cli("simulate builtin:abp --script " + script.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("non-negative integer"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("abc"), std::string::npos) << r.output;
  std::filesystem::remove(script);
}

// Regression: a stream written into --events-dir used to record the
// trace_ref relative to the *cwd*, but replay resolves it relative to the
// stream's directory — so batch streams only replayed when the two
// happened to coincide. The recorder now rebases the ref onto the stream
// directory, making the sidecars replayable from anywhere.
TEST(CliRobust, BatchEventStreamsAreReplayable) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "cli_robust_streams";
  std::filesystem::remove_all(dir);
  const RunResult batch = run_cli(
      "analyze builtin:abp --batch " + std::string(TANGO_TRACES_DIR) +
      " --events-dir=" + dir.string());
  ASSERT_TRUE(std::filesystem::exists(dir / "abp_valid.jsonl")) << batch.output;
  const RunResult check =
      run_cli("events check " + (dir / "abp_valid.jsonl").string());
  EXPECT_EQ(check.exit_code, 0) << check.output;
  const RunResult replay =
      run_cli("events replay " + (dir / "abp_valid.jsonl").string());
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_EQ(replay.output.find("cannot open"), std::string::npos)
      << replay.output;
  std::filesystem::remove_all(dir);
}

}  // namespace
