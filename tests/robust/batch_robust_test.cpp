// Batch front-end degradation (docs/ROBUSTNESS.md): one failing corpus
// entry must never take the others down. Fault injection forces the
// degradation paths — a trace-read fault, a transient fault healed by
// --item-retries, an injected per-item deadline — and each test asserts
// the faulted item degrades alone while its neighbours' results match an
// unfaulted run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/parallel_dfs.hpp"
#include "obs/sink.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::core {
namespace {

class BatchRobust : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionAvailable) {
      GTEST_SKIP() << "fault injection is compiled out in NDEBUG builds";
    }
    FaultInjector::instance().reset();
  }
  void TearDown() override {
    if (kFaultInjectionAvailable) FaultInjector::instance().reset();
  }
};

struct Corpus {
  est::Spec spec;
  std::vector<tr::Trace> traces;
};

Corpus tp0_corpus() {
  Corpus c{est::compile_spec(specs::builtin_spec("tp0")), {}};
  c.traces.push_back(sim::tp0_paper_trace(c.spec, 3));
  c.traces.push_back(
      sim::mutate_last_output_param(sim::tp0_paper_trace(c.spec, 3)));
  c.traces.push_back(sim::tp0_paper_trace(c.spec, 5));
  return c;
}

TEST_F(BatchRobust, TraceReadFaultIsolatesToItsItem) {
  Corpus c = tp0_corpus();
  Options options = Options::io();
  options.jobs = 2;
  const auto clean = analyze_batch(c.spec, c.traces, options);

  FaultInjector::instance().configure("trace-read@item:1");
  const auto faulted = analyze_batch(c.spec, c.traces, options);
  ASSERT_EQ(faulted.size(), clean.size());

  EXPECT_FALSE(faulted[1].error.empty());
  EXPECT_EQ(faulted[1].attempts, 1);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_TRUE(faulted[i].error.empty()) << "item " << i;
    EXPECT_EQ(faulted[i].result.verdict, clean[i].result.verdict)
        << "item " << i;
    EXPECT_EQ(faulted[i].result.stats.transitions_executed,
              clean[i].result.stats.transitions_executed)
        << "item " << i;
  }
}

TEST_F(BatchRobust, ItemRetriesHealATransientFault) {
  Corpus c = tp0_corpus();
  Options options = Options::io();
  options.jobs = 1;  // probe order = item order, so ":1" hits item 0 only
  options.item_retries = 1;
  // Fire only the first trace-read probe: attempt 1 of item 0 dies, its
  // retry (and every later item) is clean.
  FaultInjector::instance().configure("trace-read:1");
  const auto results = analyze_batch(c.spec, c.traces, options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[0].result.verdict, Verdict::Valid);
  EXPECT_EQ(results[1].attempts, 1);
  EXPECT_EQ(results[2].attempts, 1);
}

TEST_F(BatchRobust, ExhaustedRetriesReportTheFault) {
  Corpus c = tp0_corpus();
  Options options = Options::io();
  options.jobs = 1;
  options.item_retries = 2;
  FaultInjector::instance().configure("trace-read@item:0");  // every attempt
  const auto results = analyze_batch(c.spec, c.traces, options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_EQ(results[0].attempts, 3);  // 1 + item_retries
  EXPECT_TRUE(results[1].error.empty());
  EXPECT_TRUE(results[2].error.empty());
}

TEST_F(BatchRobust, InjectedDeadlineDegradesOneItemToInconclusive) {
  // The issue's acceptance shape: one item forced over its deadline ends
  // Inconclusive(reason=deadline) in the batch result AND on its verdict
  // event; every other item matches the unfaulted run.
  Corpus c = tp0_corpus();
  Options options = Options::io();
  options.jobs = 2;
  const auto clean = analyze_batch(c.spec, c.traces, options);

  options.deadline_ms = 60'000;
  FaultInjector::instance().configure("deadline@item:1");
  std::vector<obs::MemorySink> sinks(c.traces.size());
  std::vector<obs::Sink*> sink_ptrs;
  for (auto& s : sinks) sink_ptrs.push_back(&s);
  const auto faulted = analyze_batch(c.spec, c.traces, options, sink_ptrs);
  ASSERT_EQ(faulted.size(), clean.size());

  EXPECT_TRUE(faulted[1].error.empty());
  EXPECT_EQ(faulted[1].result.verdict, Verdict::Inconclusive);
  EXPECT_EQ(faulted[1].result.reason, InconclusiveReason::Deadline);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(faulted[i].result.verdict, clean[i].result.verdict)
        << "item " << i;
    EXPECT_EQ(faulted[i].result.reason, InconclusiveReason::None)
        << "item " << i;
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    std::string reason;
    for (const obs::Event& e : sinks[i].events()) {
      if (e.kind == obs::EventKind::Verdict) reason = e.reason;
    }
    EXPECT_EQ(reason, i == 1 ? "deadline" : "") << "item " << i;
  }
}

// Plain TEST: needs no injection, so it runs in NDEBUG builds too.
TEST(BatchDeadline, PerItemDeadlineClockStartsPerItem) {
  // A real (uninjected) per-item deadline: each item gets its own clock,
  // so a generous budget passes every small item even though the batch as
  // a whole takes longer than any single analysis.
  Corpus c = tp0_corpus();
  Options options = Options::io();
  options.jobs = 1;
  options.deadline_ms = 60'000;
  const auto results = analyze_batch(c.spec, c.traces, options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].error.empty()) << "item " << i;
    EXPECT_NE(results[i].result.verdict, Verdict::Inconclusive)
        << "item " << i;
  }
}

}  // namespace
}  // namespace tango::core
