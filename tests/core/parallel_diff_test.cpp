// Parallel-vs-sequential differential: over every golden trace under
// traces/, each order preset, and jobs ∈ {1, 2, 4}, in both relaxed and
// deterministic scheduling, the work-stealing engine must reach the same
// verdict as core::analyze (counters are schedule-dependent in relaxed
// mode by design and are not compared here — parallel_dfs_test covers
// determinism of the counters where it is promised). A same-seed fuzz
// campaign with engines {dfs, par} widens the net beyond the goldens, and
// a jobs>1 campaign must reproduce the sequential campaign's report.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "core/parallel_dfs.hpp"
#include "estelle/spec.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/fuzz.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

#ifndef TANGO_FUZZ_ITERATIONS
#define TANGO_FUZZ_ITERATIONS 50
#endif

namespace tango::core {
namespace {

struct Golden {
  const char* trace_file;
  const char* spec;
  bool initial_state_search;
};

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> g = {
      {"abp_valid.tr", "abp", false},   {"abp_invalid.tr", "abp", false},
      {"ack_paper.tr", "ack", false},   {"inres_valid.tr", "inres", false},
      {"tp0_valid.tr", "tp0", false},   {"lapd_midstream.tr", "lapd", true},
  };
  return g;
}

tr::Trace load_golden(const est::Spec& spec, const Golden& golden) {
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + golden.trace_file);
  EXPECT_TRUE(file.good()) << golden.trace_file;
  std::stringstream text;
  text << file.rdbuf();
  return tr::parse_trace(spec, text.str());
}

TEST(ParallelDiff, GoldenTracesAgreeUnderEveryPresetAndJobCount) {
  for (const Golden& golden : goldens()) {
    est::Spec spec = est::compile_spec(specs::builtin_spec(golden.spec));
    tr::Trace trace = load_golden(spec, golden);
    for (const fuzz::OrderPreset& preset : fuzz::order_presets()) {
      Options options = preset.options;
      options.initial_state_search = golden.initial_state_search;
      options.max_transitions = 200'000;
      const DfsResult seq = analyze(spec, trace, options);
      for (int jobs : {1, 2, 4}) {
        for (const bool deterministic : {false, true}) {
          Options par_options = options;
          par_options.jobs = jobs;
          par_options.deterministic = deterministic;
          const DfsResult par = analyze_parallel(spec, trace, par_options);
          EXPECT_EQ(par.verdict, seq.verdict)
              << golden.trace_file << " order=" << preset.name
              << " jobs=" << jobs << " deterministic=" << deterministic;
        }
      }
    }
  }
}

TEST(ParallelDiff, HashPruningAgreesAcrossEngines) {
  // The shared sharded table (relaxed) and the per-task private tables
  // (deterministic) prune differently; neither may change a verdict.
  for (const Golden& golden : goldens()) {
    est::Spec spec = est::compile_spec(specs::builtin_spec(golden.spec));
    tr::Trace trace = load_golden(spec, golden);
    Options options = Options::none();
    options.initial_state_search = golden.initial_state_search;
    options.max_transitions = 200'000;
    options.hash_states = true;
    const DfsResult seq = analyze(spec, trace, options);
    for (const bool deterministic : {false, true}) {
      Options par_options = options;
      par_options.jobs = 4;
      par_options.deterministic = deterministic;
      const DfsResult par = analyze_parallel(spec, trace, par_options);
      EXPECT_EQ(par.verdict, seq.verdict)
          << golden.trace_file << " deterministic=" << deterministic;
    }
  }
}

TEST(ParallelDiff, SameSeedFuzzCampaignWithParEngineIsClean) {
  fuzz::FuzzConfig config;
  config.seed = 23;
  // tp0 under the fuzzer's NR base ordering is the branching-heavy
  // workload; half the usual iteration budget keeps the campaign
  // test-sized with two specs in the mix.
  config.iterations = std::min(TANGO_FUZZ_ITERATIONS, 25);
  config.specs = {"abp", "tp0"};
  config.engines = {fuzz::Engine::Dfs, fuzz::Engine::ParDfs};

  std::ostringstream log;
  const fuzz::FuzzReport report = fuzz::run_fuzz(config, &log);
  EXPECT_TRUE(report.clean()) << log.str();
  EXPECT_EQ(report.iterations, config.iterations);
}

TEST(ParallelDiff, ConcurrentFuzzIterationsReproduceSequentialReport) {
  fuzz::FuzzConfig config;
  config.seed = 5;
  config.iterations = std::min(TANGO_FUZZ_ITERATIONS, 12);
  config.specs = {"abp", "inres"};

  const fuzz::FuzzReport seq = fuzz::run_fuzz(config, nullptr);
  config.jobs = 3;
  const fuzz::FuzzReport par = fuzz::run_fuzz(config, nullptr);

  EXPECT_EQ(par.iterations, seq.iterations);
  EXPECT_EQ(par.traces_analyzed, seq.traces_analyzed);
  EXPECT_EQ(par.verdicts, seq.verdicts);
  EXPECT_EQ(par.oracle_checks, seq.oracle_checks);
  EXPECT_EQ(par.disagreements.size(), seq.disagreements.size());
  ASSERT_EQ(par.totals.size(), seq.totals.size());
  for (std::size_t i = 0; i < par.totals.size(); ++i) {
    EXPECT_EQ(par.totals[i].engine, seq.totals[i].engine);
    EXPECT_EQ(par.totals[i].analyses, seq.totals[i].analyses);
    EXPECT_EQ(par.totals[i].stats.transitions_executed,
              seq.totals[i].stats.transitions_executed);
    EXPECT_EQ(par.totals[i].stats.generates,
              seq.totals[i].stats.generates);
    EXPECT_EQ(par.totals[i].stats.restores, seq.totals[i].stats.restores);
    EXPECT_EQ(par.totals[i].stats.saves, seq.totals[i].stats.saves);
  }
}

}  // namespace
}  // namespace tango::core
