// Relative order checking semantics (paper §2.4.2), including the
// special-case permutation rule for multi-output transition blocks and the
// queue-observability caveats the paper warns about.
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

Verdict run(const est::Spec& spec, std::string_view trace,
            const Options& opts) {
  return analyze_text(spec, trace, opts).verdict;
}

TEST(OrderChecking, InputWrtOutputRejectsLateInputs) {
  // The trace records resp BEFORE the req that causes it; consuming the
  // req must then be refused when inputs-wrt-outputs checking is on.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: req; by B: resp;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans from z to z when P.req name t: begin output P.resp; end;
end;
end.
)");
  const char* trace = "out p.resp\nin p.req\n";
  EXPECT_EQ(run(spec, trace, Options::none()), Verdict::Valid);
  Options io_only = Options::none();
  io_only.check_input_wrt_output = true;
  EXPECT_EQ(run(spec, trace, io_only), Verdict::Invalid);
}

TEST(OrderChecking, OutputWrtInputRejectsEarlyOutputs) {
  // The spec forces note BEFORE req can be consumed; the trace records req
  // first. O/I checking rejects producing note while req is pending.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: req; by B: note;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z, w;
  initialize to z begin end;
  trans
    from z to w name emit: begin output P.note; end;
    from w to w when P.req name consume: begin end;
end;
end.
)");
  const char* trace = "in p.req\nout p.note\n";
  EXPECT_EQ(run(spec, trace, Options::none()), Verdict::Valid);
  Options oi_only = Options::none();
  oi_only.check_output_wrt_input = true;
  EXPECT_EQ(run(spec, trace, oi_only), Verdict::Invalid);
  // I/O checking alone does not reject it.
  Options io_only = Options::none();
  io_only.check_input_wrt_output = true;
  EXPECT_EQ(run(spec, trace, io_only), Verdict::Valid);
}

est::Spec two_ip_spec() {
  // Consumption order is forced: B.req first, then A.req.
  return est::compile_spec(R"(
specification s;
channel CH(E, S); by E: req; by S: resp;
module M systemprocess; ip A: CH(S); B: CH(S); end;
body MB for M;
  state z, w, v;
  initialize to z begin end;
  trans
    from z to w when B.req name tb: begin end;
    from w to v when A.req name ta: begin end;
end;
end.
)");
}

TEST(OrderChecking, IpOrderConstrainsInputsAcrossIps) {
  est::Spec spec = two_ip_spec();
  // Trace records A's input first, but the module can only consume B's
  // first. Without IP checking the cross-ip order is ignored.
  const char* trace = "in a.req\nin b.req\n";
  EXPECT_EQ(run(spec, trace, Options::none()), Verdict::Valid);
  EXPECT_EQ(run(spec, trace, Options::io()), Verdict::Valid);
  EXPECT_EQ(run(spec, trace, Options::ip()), Verdict::Invalid);
  // The consistent recording is accepted in every mode.
  const char* consistent = "in b.req\nin a.req\n";
  EXPECT_EQ(run(spec, consistent, Options::ip()), Verdict::Valid);
  EXPECT_EQ(run(spec, consistent, Options::full()), Verdict::Valid);
}

TEST(OrderChecking, IpOrderConstrainsOutputsAcrossIps) {
  // x (at A) is produced by the first transition, y (at B) by the second;
  // the trace permutes them.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(E, S); by E: go; by S: x;
module M systemprocess; ip A: CH(S); B: CH(S); end;
body MB for M;
  state z, w, v;
  initialize to z begin end;
  trans
    from z to w when A.go name t1: begin output A.x; end;
    from w to v when B.go name t2: begin output B.x; end;
end;
end.
)");
  const char* permuted = "in a.go\nin b.go\nout b.x\nout a.x\n";
  EXPECT_EQ(run(spec, permuted, Options::none()), Verdict::Valid);
  EXPECT_EQ(run(spec, permuted, Options::io()), Verdict::Valid);
  EXPECT_EQ(run(spec, permuted, Options::ip()), Verdict::Invalid);
}

TEST(OrderChecking, SameBlockOutputsMayPermuteAcrossIps) {
  // Paper §2.4.2 special case: two outputs to different ips in ONE
  // transition block may appear permuted in the trace and stay valid even
  // under full checking — Estelle does not specify their order.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(E, S); by E: go; by S: x;
module M systemprocess; ip A: CH(S); B: CH(S); end;
body MB for M;
  state z, w;
  initialize to z begin end;
  trans
    from z to w when A.go name t: begin output A.x; output B.x; end;
end;
end.
)");
  EXPECT_EQ(run(spec, "in a.go\nout b.x\nout a.x\n", Options::full()),
            Verdict::Valid);
  EXPECT_EQ(run(spec, "in a.go\nout a.x\nout b.x\n", Options::full()),
            Verdict::Valid);
}

TEST(OrderChecking, SameIpSameBlockOutputsMayNotPermute) {
  // Within one ip the trace order is always authoritative, even inside a
  // block: out A.x1; out A.x2 cannot match a trace with x2 first.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(E, S); by E: go; by S: x1; x2;
module M systemprocess; ip A: CH(S); end;
body MB for M;
  state z, w;
  initialize to z begin end;
  trans
    from z to w when A.go name t: begin output A.x1; output A.x2; end;
end;
end.
)");
  EXPECT_EQ(run(spec, "in a.go\nout a.x1\nout a.x2\n", Options::none()),
            Verdict::Valid);
  EXPECT_EQ(run(spec, "in a.go\nout a.x2\nout a.x1\n", Options::none()),
            Verdict::Invalid);
}

TEST(OrderChecking, InputQueueMakesOiUnsound) {
  // Paper §2.4.2: "Outputs with respect to inputs ... should not be used
  // if the implementation that generated the trace includes an input
  // queue". Simulate an IUT whose inputs are recorded at ARRIVAL: a second
  // req is already in the trace before the first resp, although the module
  // consumed it later.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: req; by B: resp;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans from z to z when P.req name t: begin output P.resp; end;
end;
end.
)");
  std::vector<sim::Feed> feeds = {
      sim::make_feed(spec, 0, "p", "req"),
      sim::make_feed(spec, 0, "p", "req"),
  };
  sim::SimOptions so;
  so.recording = sim::InputRecording::AtArrival;
  sim::SimResult sr = sim::simulate(spec, feeds, so);
  ASSERT_TRUE(sr.completed);
  // Arrival order: req, req, resp, resp.
  ASSERT_EQ(sr.trace.events().size(), 4u);

  Options oi_only = Options::none();
  oi_only.check_output_wrt_input = true;
  EXPECT_EQ(analyze(spec, sr.trace, oi_only).verdict, Verdict::Invalid);
  // Without O/I the queueing is tolerated.
  Options io_only = Options::none();
  io_only.check_input_wrt_output = true;
  EXPECT_EQ(analyze(spec, sr.trace, io_only).verdict, Verdict::Valid);
}

TEST(OrderChecking, FullyObservableTracesValidUnderEveryMode) {
  // Recording inputs at consumption and outputs at generation satisfies
  // all §2.4.2 options (the paper's "observe inputs after they exit ...
  // queues" condition).
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: req(v: integer); by B: resp(v: integer);
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.req name tp: begin output P.resp(v); end;
    from z to z when Q.req name tq: begin output Q.resp(v + 1); end;
end;
end.
)");
  std::vector<sim::Feed> feeds;
  for (int i = 0; i < 6; ++i) {
    feeds.push_back(sim::make_feed(spec, static_cast<std::uint64_t>(i),
                                   i % 2 == 0 ? "p" : "q", "req",
                                   {rt::Value::make_int(i)}));
  }
  sim::SimResult sr = sim::simulate(spec, feeds, {});
  ASSERT_TRUE(sr.completed);
  for (const Options& opts : {Options::none(), Options::io(), Options::ip(),
                              Options::full()}) {
    EXPECT_EQ(analyze(spec, sr.trace, opts).verdict, Verdict::Valid)
        << opts.order_mode_name();
  }
}

TEST(OrderChecking, OrderOptionsShrinkTheSearch) {
  // §2.4.2: "the use of order checking ... significantly reduces the state
  // space of the search".
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: req(v: integer); by B: resp(v: integer);
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.req name tp: begin output P.resp(v); end;
    from z to z when Q.req name tq: begin output Q.resp(v); end;
end;
end.
)");
  std::string trace;
  for (int i = 0; i < 5; ++i) {
    trace += "in p.req(" + std::to_string(i) + ")\n";
    trace += "in q.req(" + std::to_string(i) + ")\n";
    trace += "out p.resp(" + std::to_string(i) + ")\n";
    trace += "out q.resp(" + std::to_string(i) + ")\n";
  }
  DfsResult none = analyze_text(spec, trace, Options::none());
  DfsResult full = analyze_text(spec, trace, Options::full());
  ASSERT_EQ(none.verdict, Verdict::Valid);
  ASSERT_EQ(full.verdict, Verdict::Valid);
  EXPECT_LE(full.stats.transitions_executed,
            none.stats.transitions_executed);
  EXPECT_LE(full.stats.saves, none.stats.saves);
}

}  // namespace
}  // namespace tango::core
