// Incremental-vs-full hashing differential: the full recursive walk
// (HashImpl::Full) is the oracle for the trail-maintained incremental
// hash (HashImpl::Incremental, the default). The two implementations must
// be BIT-IDENTICAL, not merely consistent — the visited table persists
// hashes across a whole run, obs streams record them, and DESIGN.md §4's
// permutation-invariance contract is stated over hash values. So over
// every golden trace under traces/, each engine × order-preset cell must
// produce the same verdict, the same Figure-3 counters (TE/GE/RE/SA), the
// same pruned_by_hash count, and — for the deterministic engines — a
// byte-identical search-event stream, state_hash fields included.
//
// (Debug builds additionally assert incremental == full on every single
// hash taken, inside core::state_hash; this test is the Release-mode net.)
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "estelle/spec.hpp"
#include "fuzz/differential.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::fuzz {
namespace {

struct Golden {
  const char* trace_file;
  const char* spec;
  bool initial_state_search;
};

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> g = {
      {"abp_valid.tr", "abp", false},   {"abp_invalid.tr", "abp", false},
      {"ack_paper.tr", "ack", false},   {"inres_valid.tr", "inres", false},
      {"tp0_valid.tr", "tp0", false},   {"lapd_midstream.tr", "lapd", true},
  };
  return g;
}

tr::Trace load_trace(const est::Spec& spec, const Golden& golden) {
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + golden.trace_file);
  EXPECT_TRUE(file.good()) << golden.trace_file;
  std::stringstream text;
  text << file.rdbuf();
  return tr::parse_trace(spec, text.str());
}

MatrixResult matrix_for(const Golden& golden, core::HashImpl impl,
                        const std::vector<Engine>& engines) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(golden.spec));
  tr::Trace trace = load_trace(spec, golden);

  core::Options base = core::Options::none();
  base.max_transitions = 200'000;
  base.initial_state_search = golden.initial_state_search;
  base.hash_impl = impl;
  return run_matrix(spec, trace, engines, base, /*chunk=*/3);
}

void expect_identical_search(const EngineRun& full, const EngineRun& inc,
                             const std::string& context) {
  EXPECT_EQ(full.verdict, inc.verdict) << context;
  EXPECT_EQ(full.stats.transitions_executed,
            inc.stats.transitions_executed) << context;  // TE
  EXPECT_EQ(full.stats.generates, inc.stats.generates) << context;  // GE
  EXPECT_EQ(full.stats.restores, inc.stats.restores) << context;    // RE
  EXPECT_EQ(full.stats.saves, inc.stats.saves) << context;          // SA
  // Identical hash values => identical visited-table behaviour. Any
  // divergence here means the incremental path produced a different hash
  // for some state than the full walk would have.
  EXPECT_EQ(full.stats.pruned_by_hash, inc.stats.pruned_by_hash) << context;
  EXPECT_EQ(full.stats.fanout_sum, inc.stats.fanout_sum) << context;
  EXPECT_EQ(full.stats.max_depth, inc.stats.max_depth) << context;
}

TEST(HashImplDiff, GoldenTracesAgreeCellByCell) {
  for (const Golden& golden : goldens()) {
    const MatrixResult full = matrix_for(
        golden, core::HashImpl::Full, {Engine::Dfs, Engine::HashDfs,
                                       Engine::Mdfs});
    const MatrixResult inc = matrix_for(
        golden, core::HashImpl::Incremental, {Engine::Dfs, Engine::HashDfs,
                                              Engine::Mdfs});
    ASSERT_EQ(full.columns.size(), inc.columns.size());
    for (std::size_t c = 0; c < full.columns.size(); ++c) {
      ASSERT_EQ(full.columns[c].runs.size(), inc.columns[c].runs.size());
      for (std::size_t r = 0; r < full.columns[c].runs.size(); ++r) {
        const EngineRun& fr = full.columns[c].runs[r];
        const EngineRun& ir = inc.columns[c].runs[r];
        ASSERT_EQ(fr.engine, ir.engine);
        expect_identical_search(
            fr, ir,
            std::string(golden.trace_file) + " order=" +
                full.columns[c].order + " engine=" +
                std::string(to_string(fr.engine)));
      }
    }
  }
}

TEST(HashImplDiff, ParallelEngineVerdictsAgree) {
  // ParDfs counters are schedule-dependent, so only the verdicts (and the
  // within-matrix agreement relation) are comparable across impls.
  for (const Golden& golden : goldens()) {
    const MatrixResult full =
        matrix_for(golden, core::HashImpl::Full, {Engine::ParDfs});
    const MatrixResult inc =
        matrix_for(golden, core::HashImpl::Incremental, {Engine::ParDfs});
    ASSERT_EQ(full.columns.size(), inc.columns.size());
    for (std::size_t c = 0; c < full.columns.size(); ++c) {
      EXPECT_TRUE(full.columns[c].agreed) << full.columns[c].disagreement;
      EXPECT_TRUE(inc.columns[c].agreed) << inc.columns[c].disagreement;
      ASSERT_EQ(full.columns[c].runs.size(), inc.columns[c].runs.size());
      for (std::size_t r = 0; r < full.columns[c].runs.size(); ++r) {
        EXPECT_EQ(full.columns[c].runs[r].verdict,
                  inc.columns[c].runs[r].verdict)
            << golden.trace_file << " order=" << full.columns[c].order;
      }
    }
  }
}

TEST(HashImplDiff, EventStreamsAreByteIdentical) {
  // The obs stream records state_hash on every enter event. A DFS run is
  // deterministic, so the two impls must serialize the exact same JSONL —
  // the strongest statement that the hash VALUES (not just the search
  // shape) coincide.
  for (const Golden& golden : goldens()) {
    std::string streams[2];
    const core::HashImpl impls[2] = {core::HashImpl::Full,
                                     core::HashImpl::Incremental};
    for (int i = 0; i < 2; ++i) {
      est::Spec spec = est::compile_spec(specs::builtin_spec(golden.spec));
      tr::Trace trace = load_trace(spec, golden);
      core::Options options = core::Options::none();
      options.max_transitions = 200'000;
      options.initial_state_search = golden.initial_state_search;
      options.hash_states = true;  // exercise the visited table too
      options.hash_impl = impls[i];
      obs::MemorySink sink;
      options.sink = &sink;
      (void)core::analyze(spec, trace, options);
      std::ostringstream os;
      for (const obs::Event& e : sink.events()) {
        os << obs::to_jsonl(e) << '\n';
      }
      streams[i] = os.str();
    }
    EXPECT_FALSE(streams[0].empty()) << golden.trace_file;
    EXPECT_EQ(streams[0], streams[1]) << golden.trace_file;
  }
}

}  // namespace
}  // namespace tango::fuzz
