// On-line trace analysis — the paper's §3 scenarios: the ack example that
// deadlocks plain DFS, PG/PGAV verdict semantics on ip3/ip3', eof-forced
// termination, and the dynamic node-reordering option.
#include "core/mdfs.hpp"

#include <gtest/gtest.h>

#include "specs/builtin_specs.hpp"

namespace tango::core {
namespace {

struct Online {
  explicit Online(std::string_view spec_text, Options opts = Options::none())
      : spec(est::compile_spec(spec_text)), feed(spec) {
    OnlineConfig config;
    config.options = opts;
    analyzer = std::make_unique<OnlineAnalyzer>(spec, feed, config);
  }

  OnlineStatus pump() { return analyzer->step_round(100000); }

  est::Spec spec;
  tr::MemoryFeed feed;
  std::unique_ptr<OnlineAnalyzer> analyzer;
};

TEST(Mdfs, PaperAckScenarioAvoidsDeadlock) {
  // §3.1: inputs [x x x] at A and [y] at B arrive, output [ack]. A greedy
  // DFS that fires T1 three times starves; MDFS saves the PG states and
  // revisits them, reaching the T1,T2,T3,T1 solution.
  Online o(specs::ack());
  for (const char* line :
       {"in a.x", "in a.x", "in a.x", "in b.y", "out a.ack"}) {
    o.feed.push_line(line);
  }
  OnlineStatus s = o.pump();
  // Everything observed so far is explained: a PGAV node exists.
  EXPECT_EQ(s, OnlineStatus::ValidSoFar);
  EXPECT_GT(o.analyzer->pg_count(), 0u);

  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
  EXPECT_TRUE(o.analyzer->conclusive());
}

TEST(Mdfs, IncrementalFeedingTracksVerdicts) {
  Online o(specs::ack());
  o.feed.push_line("in a.x");
  EXPECT_EQ(o.pump(), OnlineStatus::ValidSoFar);
  o.feed.push_line("in a.x");
  o.feed.push_line("in b.y");
  // Consuming y forces an ack the trace has not recorded yet, so no PGAV
  // node exists — the honest verdict is "likely invalid" (§3.1.2's
  // "maybe") until the ack shows up.
  EXPECT_EQ(o.pump(), OnlineStatus::LikelyInvalid);
  o.feed.push_line("out a.ack");
  EXPECT_EQ(o.pump(), OnlineStatus::ValidSoFar);
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
}

TEST(Mdfs, UnexplainedOutputIsOnlyLikelyInvalidWhileTraceMayGrow) {
  // "out a.ack" with nothing before it cannot be explained YET — but more
  // inputs could still arrive and make T3 produce it, so the on-line
  // verdict must stay inconclusive (§3.1.2), unlike the batch analyzer.
  Online o(specs::ack());
  o.feed.push_line("out a.ack");
  EXPECT_EQ(o.pump(), OnlineStatus::LikelyInvalid);
  EXPECT_FALSE(o.analyzer->conclusive());
  o.feed.push_line("in a.x");
  o.feed.push_line("in b.y");
  o.feed.push_eof();
  // With x and y available, T2;T3 produces the ack after all: valid.
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
}

TEST(Mdfs, InvalidPrefixConcludesWithoutEof) {
  // §3.1.2: a conclusive on-line "invalid" is possible when the bad prefix
  // kills every branch and leaves no PG node. A one-shot machine whose
  // final state has no when-transitions gives exactly that.
  Online o(R"(
specification s;
channel CH(A, B); by A: m; by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z, done;
  initialize to z begin end;
  trans from z to done when P.m name t: begin output P.r; end;
end;
end.
)");
  o.feed.push_line("in p.m");
  o.feed.push_line("out p.r");
  o.feed.push_line("in p.m");  // one-shot: a second m can never be consumed
  EXPECT_EQ(o.pump(), OnlineStatus::Invalid);
  EXPECT_TRUE(o.analyzer->conclusive());
}

TEST(Mdfs, Ip3PrimeInvalidOutputIsNotDetected) {
  // §3.1.2, specification ip3': the o output can never be produced, but
  // B/C data keeps the PG cycle alive — the TAM reports "likely invalid",
  // never a conclusive verdict, while data keeps flowing.
  Online o(specs::ip3prime());
  o.feed.push_line("in a.x");
  o.feed.push_line("out a.p");
  o.feed.push_line("out a.o");  // invalid: ip3' never produces o
  o.feed.push_line("in b.data");
  o.feed.push_line("out c.data");
  OnlineStatus s = o.pump();
  EXPECT_EQ(s, OnlineStatus::LikelyInvalid);
  EXPECT_FALSE(o.analyzer->conclusive());

  // More B/C data is verified and the TAM keeps waiting (§3.1.2).
  o.feed.push_line("in c.data");
  o.feed.push_line("out b.data");
  EXPECT_EQ(o.pump(), OnlineStatus::LikelyInvalid);

  // Only the operator's eof marker forces the conclusive verdict.
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Invalid);
}

TEST(Mdfs, Ip3FinishedUnlocksTheOutput) {
  // §3.1.2, full ip3: once finished arrives at B, t4 fires, s2 is reached
  // and o is verified.
  Online o(specs::ip3());
  o.feed.push_line("in b.data");
  o.feed.push_line("out c.data");
  o.feed.push_line("in b.finished");
  o.feed.push_line("in a.x");
  o.feed.push_line("out a.o");
  EXPECT_EQ(o.pump(), OnlineStatus::ValidSoFar);
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
}

TEST(Mdfs, EofWithUnexplainedEventsIsInvalid) {
  Online o(specs::ack());
  o.feed.push_line("in b.y");  // y is only consumable from S2
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Invalid);
}

TEST(Mdfs, ReorderingOffStillConcludesCorrectly) {
  Options basic = Options::none();
  basic.reorder_pg_nodes = false;  // basic MDFS of §3.1.1
  Online o(specs::ack(), basic);
  for (const char* line :
       {"in a.x", "in a.x", "in a.x", "in b.y", "out a.ack"}) {
    o.feed.push_line(line);
  }
  EXPECT_EQ(o.pump(), OnlineStatus::ValidSoFar);
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
}

TEST(Mdfs, PiecemealArrivalMatchesBatchVerdict) {
  // Feeding one event per round must reach the same verdict as a batch
  // feed (here: a valid abp exchange with a retransmission).
  const char* lines[] = {
      "in  u.send(9)",  "out m.frame(0, 9)", "out m.frame(0, 9)",
      "in  m.ack(0)",   "out u.confirm",
  };
  Online o(specs::abp(), Options::io());
  for (const char* line : lines) {
    o.feed.push_line(line);
    OnlineStatus s = o.pump();
    EXPECT_NE(s, OnlineStatus::Invalid) << line;
  }
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Valid);
}

TEST(Mdfs, RunLoopTerminatesOnIdleSource) {
  Online o(specs::ack());
  o.feed.push_line("in a.x");
  OnlineStatus s = o.analyzer->run(4096, /*idle_rounds=*/2);
  EXPECT_EQ(s, OnlineStatus::ValidSoFar);
}

TEST(Mdfs, TransitionBudgetYieldsInconclusive) {
  Options opts = Options::none();
  opts.max_transitions = 3;
  Online o(specs::ack(), opts);
  for (const char* line :
       {"in a.x", "in a.x", "in a.x", "in b.y", "out a.ack"}) {
    o.feed.push_line(line);
  }
  o.feed.push_eof();
  EXPECT_EQ(o.pump(), OnlineStatus::Inconclusive);
}

TEST(Mdfs, StatsArePopulated) {
  Online o(specs::ack());
  o.feed.push_line("in a.x");
  o.feed.push_line("in b.y");  // will require exploring both T1/T2
  o.feed.push_line("out a.ack");
  (void)o.pump();
  EXPECT_GT(o.analyzer->stats().transitions_executed, 0u);
  EXPECT_GT(o.analyzer->stats().generates, 0u);
  EXPECT_GT(o.analyzer->stats().saves, 0u);
}

}  // namespace
}  // namespace tango::core
