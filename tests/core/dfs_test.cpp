#include "core/dfs.hpp"

#include <gtest/gtest.h>

#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

est::Spec ack() { return est::compile_spec(specs::ack()); }

TEST(Dfs, EmptyTraceIsValid) {
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec, "", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Valid);
  ASSERT_EQ(r.solution.size(), 1u);
  EXPECT_EQ(r.solution[0], "initialize to s1");
}

TEST(Dfs, PaperAckTraceIsValid) {
  // Paper §3.1: inputs [x x x] at A, [y] at B, output [ack] — valid via
  // T1, T2, T3, T1.
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec,
                             "in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n",
                             Options::none());
  EXPECT_EQ(r.verdict, Verdict::Valid);
  // Solution: initialize + 4 transitions.
  ASSERT_EQ(r.solution.size(), 5u);
  EXPECT_GT(r.stats.transitions_executed, 0u);
}

TEST(Dfs, BacktrackingIsRequiredAndCounted) {
  // The greedy path takes T1 first and dead-ends; DFS must backtrack into
  // the T2 branch.
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec, "in A.x\nin B.y\nout A.ack\n",
                             Options::none());
  EXPECT_EQ(r.verdict, Verdict::Valid);
  EXPECT_GE(r.stats.restores, 1u);
  EXPECT_GE(r.stats.saves, 1u);
  ASSERT_EQ(r.solution.size(), 3u);
  EXPECT_EQ(r.solution[1], "t2");
  EXPECT_EQ(r.solution[2], "t3");
}

TEST(Dfs, MissingOutputMakesTraceInvalid) {
  est::Spec spec = ack();
  // y consumed means T3 fired, which must output ack; the trace has none.
  DfsResult r = analyze_text(spec, "in A.x\nin B.y\n", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
  EXPECT_FALSE(r.note.empty());
}

TEST(Dfs, UnproducibleOutputMakesTraceInvalid) {
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec, "out A.ack\n", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
}

TEST(Dfs, UnconsumableInputMakesTraceInvalid) {
  est::Spec spec = ack();
  // y can only be consumed from S2; with no x, S2 is unreachable.
  DfsResult r = analyze_text(spec, "in B.y\n", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
}

TEST(Dfs, SameIpSameDirectionOrderIsAlwaysChecked) {
  // ack output before its cause is fine for mode NONE only across ips;
  // within one ip the trace order is authoritative. Here the second y
  // cannot be consumed before the first — trivially satisfied — but an ack
  // before any y is unproducible.
  est::Spec spec = ack();
  DfsResult r = analyze_text(spec, "out A.ack\nin A.x\nin B.y\n",
                             Options::none());
  // With no order options the analyzer may consume x,y first and then
  // produce ack; the trace stays valid because out-events only constrain
  // their own ip's output order.
  EXPECT_EQ(r.verdict, Verdict::Valid);
}

TEST(Dfs, ParameterMismatchDetected) {
  est::Spec spec = est::compile_spec(specs::abp());
  const char* good =
      "in  U.send(5)\n"
      "out M.frame(0, 5)\n"
      "in  M.ack(0)\n"
      "out U.confirm\n";
  EXPECT_EQ(analyze_text(spec, good, Options::io()).verdict, Verdict::Valid);
  const char* bad =
      "in  U.send(5)\n"
      "out M.frame(0, 6)\n"  // wrong payload
      "in  M.ack(0)\n"
      "out U.confirm\n";
  DfsResult r = analyze_text(spec, bad, Options::io());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
  EXPECT_NE(r.note.find("parameter"), std::string::npos);
}

TEST(Dfs, RetransmissionNondeterminismIsSearched) {
  est::Spec spec = est::compile_spec(specs::abp());
  // Two identical frames: the second is the spontaneous retransmission.
  const char* trace =
      "in  U.send(9)\n"
      "out M.frame(0, 9)\n"
      "out M.frame(0, 9)\n"
      "in  M.ack(0)\n"
      "out U.confirm\n";
  DfsResult r = analyze_text(spec, trace, Options::io());
  EXPECT_EQ(r.verdict, Verdict::Valid);
}

TEST(Dfs, WrongAckIsIgnoredByBadackTransition) {
  est::Spec spec = est::compile_spec(specs::abp());
  const char* trace =
      "in  U.send(9)\n"
      "out M.frame(0, 9)\n"
      "in  M.ack(1)\n"   // wrong sequence number: badack consumes it
      "in  M.ack(0)\n"
      "out U.confirm\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict, Verdict::Valid);
}

TEST(Dfs, InitialStateSearchRecoversMidStream) {
  // Paper §2.4.1: a trace collected after the IUT ran for a while — here a
  // lone "in B.y; out A.ack" is only explainable from S2.
  est::Spec spec = ack();
  const char* trace = "in B.y\nout A.ack\n";
  EXPECT_EQ(analyze_text(spec, trace, Options::none()).verdict,
            Verdict::Invalid);
  Options opts = Options::none();
  opts.initial_state_search = true;
  DfsResult r = analyze_text(spec, trace, opts);
  EXPECT_EQ(r.verdict, Verdict::Valid);
  EXPECT_EQ(r.solution[0], "initialize to s2");
}

TEST(Dfs, DisabledIpSkipsOutputChecking) {
  est::Spec spec = ack();
  // Without A's outputs observed, the ack is not in the trace; disabling A
  // must make the input-only trace valid.
  Options opts = Options::none();
  opts.disabled_ips.push_back("a");
  // Inputs at A are part of the trace => disabling A rejects the trace.
  EXPECT_THROW(analyze_text(spec, "in A.x\nin B.y\n", opts), CompileError);
  DfsResult r = analyze_text(spec, "in B.y\n", opts);
  // y still needs S2, reachable only by consuming an x at A — but A is
  // disabled, so its when-transitions never fire: invalid.
  EXPECT_EQ(r.verdict, Verdict::Invalid);
}

TEST(Dfs, TransitionBudgetYieldsInconclusive) {
  est::Spec spec = ack();
  Options opts = Options::none();
  opts.max_transitions = 2;
  DfsResult r = analyze_text(
      spec, "in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n", opts);
  EXPECT_EQ(r.verdict, Verdict::Inconclusive);
}

TEST(Dfs, DepthBoundYieldsInconclusiveNotInvalid) {
  est::Spec spec = ack();
  Options opts = Options::none();
  opts.max_depth = 2;
  DfsResult r = analyze_text(
      spec, "in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n", opts);
  EXPECT_EQ(r.verdict, Verdict::Inconclusive);
}

TEST(Dfs, StateHashingPreservesVerdicts) {
  est::Spec spec = ack();
  for (const char* trace :
       {"in A.x\nin A.x\nin A.x\nin B.y\nout A.ack\n", "in A.x\nin B.y\n"}) {
    DfsResult plain = analyze_text(spec, trace, Options::none());
    Options hashed = Options::none();
    hashed.hash_states = true;
    DfsResult pruned = analyze_text(spec, trace, hashed);
    EXPECT_EQ(plain.verdict, pruned.verdict);
    EXPECT_LE(pruned.stats.transitions_executed,
              plain.stats.transitions_executed);
  }
}

TEST(Dfs, PriorityRestrictsChoice) {
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: m; by B: lo; hi;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.m priority 5 name slow: begin output P.lo; end;
    from z to z when P.m priority 1 name fast: begin output P.hi; end;
end;
end.
)");
  // Only the priority-1 transition may fire: hi is producible, lo is not.
  EXPECT_EQ(analyze_text(spec, "in P.m\nout P.hi\n", Options::none()).verdict,
            Verdict::Valid);
  EXPECT_EQ(analyze_text(spec, "in P.m\nout P.lo\n", Options::none()).verdict,
            Verdict::Invalid);
}

TEST(Dfs, MultipleInitializersAreAlternatives) {
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: m; by B: r1; r2;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state a, b;
  initialize to a begin end;
  initialize to b begin end;
  trans
    from a to a when P.m name ta: begin output P.r1; end;
    from b to b when P.m name tb: begin output P.r2; end;
end;
end.
)");
  EXPECT_EQ(analyze_text(spec, "in P.m\nout P.r1\n", Options::none()).verdict,
            Verdict::Valid);
  EXPECT_EQ(analyze_text(spec, "in P.m\nout P.r2\n", Options::none()).verdict,
            Verdict::Valid);
}

TEST(Dfs, RuntimeFaultKillsOnlyTheOffendingPath) {
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: r(v: integer);
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.d name crash: begin output P.r(1 div (v - v)); end;
    from z to z when P.d name ok: begin output P.r(v); end;
end;
end.
)");
  DfsResult r = analyze_text(spec, "in P.d(4)\nout P.r(4)\n", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Valid);  // `ok` path survives
}

TEST(Dfs, DoubleDisposeSurfacesAsAnalysisError) {
  // A spec whose only explaining path releases the same cell twice: the
  // fault must kill the path (trace Invalid) and the verdict note must say
  // why, rather than the heap silently ignoring the second dispose.
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: m; by B: r;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  type PI = ^integer;
  var p, q: PI;
  state z;
  initialize to z begin new(p); q := p; end;
  trans
    from z to z when P.m name dd:
      begin dispose(p); dispose(q); output P.r; end;
end;
end.
)");
  DfsResult r = analyze_text(spec, "in P.m\nout P.r\n", Options::none());
  EXPECT_EQ(r.verdict, Verdict::Invalid);
  EXPECT_NE(r.note.find("double dispose"), std::string::npos) << r.note;
}

TEST(Dfs, SolutionPathReplaysTransitionNames) {
  est::Spec spec = est::compile_spec(specs::tp0());
  const char* trace =
      "in  U.tconreq\n"
      "out N.cr\n"
      "in  N.cc\n"
      "out U.tconcnf\n"
      "in  U.tdtreq(1)\n"
      "out N.dt(1)\n";
  DfsResult r = analyze_text(spec, trace, Options::full());
  ASSERT_EQ(r.verdict, Verdict::Valid);
  ASSERT_EQ(r.solution.size(), 5u);
  EXPECT_EQ(r.solution[1], "t1");
  EXPECT_EQ(r.solution[2], "t2");
  EXPECT_EQ(r.solution[3], "t13");
  EXPECT_EQ(r.solution[4], "t14");
}

}  // namespace
}  // namespace tango::core
