// Unit coverage for the parallel work-stealing engine and its supporting
// pieces: the bounded VisitedSet / ShardedVisitedTable, verdict parity
// with core::analyze, run-to-run determinism of --deterministic mode,
// budget exhaustion, eviction accounting, and the batch front-end.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "core/parallel_dfs.hpp"
#include "core/visited.hpp"
#include "estelle/spec.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

TEST(VisitedSet, UnboundedKeepsEverything) {
  VisitedSet set;
  for (std::uint64_t h = 0; h < 1000; ++h) EXPECT_TRUE(set.insert(h));
  for (std::uint64_t h = 0; h < 1000; ++h) EXPECT_FALSE(set.insert(h));
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_EQ(set.evictions(), 0u);
}

TEST(VisitedSet, BoundedEvictsAtCapacity) {
  VisitedSet set(/*max_entries=*/64);
  for (std::uint64_t h = 0; h < 1000; ++h) {
    // Every hash is fresh (never inserted before), so insert always
    // reports fresh even while older entries are being evicted.
    EXPECT_TRUE(set.insert(h));
  }
  EXPECT_LE(set.size(), 64u);
  EXPECT_EQ(set.evictions(), 1000u - 64u);
}

TEST(VisitedSet, EvictionIsSeedDeterministic) {
  VisitedSet a(/*max_entries=*/16), b(/*max_entries=*/16);
  std::vector<bool> ra, rb;
  for (std::uint64_t h = 0; h < 200; ++h) {
    ra.push_back(a.insert(h % 40));
    rb.push_back(b.insert(h % 40));
  }
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(a.evictions(), b.evictions());
}

TEST(ShardedVisitedTable, DetectsDuplicatesAcrossFullKeyRange) {
  ShardedVisitedTable table(/*shards=*/8, /*max_entries=*/0);
  std::set<std::uint64_t> reference;
  std::uint64_t h = 0x2545F4914F6CDD1DULL;
  for (int i = 0; i < 2000; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    const std::uint64_t key = h % 700;  // force duplicates
    EXPECT_EQ(table.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(table.total_evictions(), 0u);
}

est::Spec tp0_spec() {
  return est::compile_spec(specs::builtin_spec("tp0"));
}

/// Branching workload: the §4.2 invalid TP0 trace, whose two valid
/// interleavings per round make the refutation tree exponential in n.
tr::Trace branching_invalid_trace(const est::Spec& spec, int n) {
  return sim::mutate_last_output_param(sim::tp0_paper_trace(spec, n));
}

TEST(ParallelDfs, MatchesSequentialVerdictOnBranchingWorkloads) {
  // Workload sizes track the preset cost: refuting the §4.2 invalid trace
  // explodes as the ordering constraint weakens (FULL ≪ IO ≪ NR), so each
  // preset gets the largest n that stays test-sized.
  struct Case { const char* order; int n; };
  est::Spec spec = tp0_spec();
  for (const Case& c : {Case{"io", 6}, Case{"full", 8}}) {
    for (const bool invalid : {false, true}) {
      tr::Trace trace = invalid ? branching_invalid_trace(spec, c.n)
                                : sim::tp0_paper_trace(spec, c.n);
      Options options =
          std::string(c.order) == "io" ? Options::io() : Options::full();
      const DfsResult seq = analyze(spec, trace, options);
      for (int jobs : {2, 4}) {
        options.jobs = jobs;
        const DfsResult par = analyze_parallel(spec, trace, options);
        EXPECT_EQ(par.verdict, seq.verdict)
            << "invalid=" << invalid << " order=" << c.order
            << " jobs=" << jobs;
      }
    }
  }
}

TEST(ParallelDfs, JobsOneMatchesSequentialCountersExactly) {
  // A single worker explores the tree in the sequential engine's order
  // (nothing is ever stolen), so the Figure-3 counters must line up.
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  Options options = Options::full();
  const DfsResult seq = analyze(spec, trace, options);
  options.jobs = 1;
  const DfsResult par = analyze_parallel(spec, trace, options);
  EXPECT_EQ(par.verdict, seq.verdict);
  EXPECT_EQ(par.stats.transitions_executed, seq.stats.transitions_executed);
  EXPECT_EQ(par.stats.generates, seq.stats.generates);
  EXPECT_EQ(par.stats.max_depth, seq.stats.max_depth);
  EXPECT_EQ(par.stats.tasks_stolen, 0u);
}

TEST(ParallelDfs, DeterministicModeIsRunToRunIdentical) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  Options options = Options::full();
  options.jobs = 4;
  options.deterministic = true;
  options.hash_states = true;

  const DfsResult first = analyze_parallel(spec, trace, options);
  for (int run = 0; run < 3; ++run) {
    const DfsResult again = analyze_parallel(spec, trace, options);
    EXPECT_EQ(again.verdict, first.verdict);
    EXPECT_EQ(again.solution, first.solution);
    EXPECT_EQ(again.note, first.note);
    EXPECT_EQ(again.stats.transitions_executed,
              first.stats.transitions_executed);
    EXPECT_EQ(again.stats.generates, first.stats.generates);
    EXPECT_EQ(again.stats.restores, first.stats.restores);
    EXPECT_EQ(again.stats.saves, first.stats.saves);
    EXPECT_EQ(again.stats.pruned_by_hash, first.stats.pruned_by_hash);
    EXPECT_EQ(again.stats.tasks_published, first.stats.tasks_published);
    EXPECT_EQ(again.stats.max_depth, first.stats.max_depth);
  }
}

TEST(ParallelDfs, DeterministicSolutionMatchesSequential) {
  // On a valid trace the deterministic merge prefers the smallest-lineage
  // solution, which is the leftmost root — the same root the sequential
  // engine commits to.
  est::Spec spec = tp0_spec();
  tr::Trace trace = sim::tp0_paper_trace(spec, 6);
  Options options = Options::io();
  const DfsResult seq = analyze(spec, trace, options);
  ASSERT_EQ(seq.verdict, Verdict::Valid);
  options.jobs = 4;
  options.deterministic = true;
  const DfsResult par = analyze_parallel(spec, trace, options);
  EXPECT_EQ(par.verdict, Verdict::Valid);
  EXPECT_EQ(par.solution, seq.solution);
}

TEST(ParallelDfs, BudgetExhaustionIsInconclusive) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 10);
  for (const bool deterministic : {false, true}) {
    Options options = Options::full();
    options.jobs = 4;
    options.deterministic = deterministic;
    options.max_transitions = 20;
    const DfsResult r = analyze_parallel(spec, trace, options);
    EXPECT_EQ(r.verdict, Verdict::Inconclusive)
        << "deterministic=" << deterministic;
  }
}

TEST(ParallelDfs, StealingActuallyHappens) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 10);
  Options options = Options::full();
  options.jobs = 4;
  const DfsResult r = analyze_parallel(spec, trace, options);
  EXPECT_GT(r.stats.tasks_published, 0u);
  // With one trace root and >1 worker, any second worker's first task is
  // by definition stolen.
  EXPECT_GT(r.stats.tasks_stolen, 0u);
}

TEST(SequentialDfs, VisitedMaxEvictsWithoutChangingVerdicts) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  Options unbounded = Options::full();
  unbounded.hash_states = true;
  const DfsResult full = analyze(spec, trace, unbounded);
  EXPECT_EQ(full.stats.evictions, 0u);

  Options bounded = unbounded;
  bounded.visited_max = 8;
  const DfsResult capped = analyze(spec, trace, bounded);
  EXPECT_EQ(capped.verdict, full.verdict);
  EXPECT_GT(capped.stats.evictions, 0u);
  // Weaker pruning can only re-explore states, never skip live paths.
  EXPECT_GE(capped.stats.transitions_executed,
            full.stats.transitions_executed);
}

TEST(ParallelDfs, VisitedMaxAppliesInBothModes) {
  est::Spec spec = tp0_spec();
  tr::Trace trace = branching_invalid_trace(spec, 8);
  for (const bool deterministic : {false, true}) {
    Options options = Options::full();
    options.jobs = 4;
    options.deterministic = deterministic;
    options.hash_states = true;
    options.visited_max = 8;
    const DfsResult r = analyze_parallel(spec, trace, options);
    EXPECT_EQ(r.verdict, Verdict::Invalid)
        << "deterministic=" << deterministic;
  }
}

TEST(AnalyzeBatch, ResultsComeBackInInputOrder) {
  est::Spec spec = tp0_spec();
  std::vector<tr::Trace> corpus;
  std::vector<Verdict> expected;
  for (int i = 0; i < 6; ++i) {
    const bool invalid = i % 2 == 1;
    corpus.push_back(invalid ? branching_invalid_trace(spec, 3 + i)
                             : sim::tp0_paper_trace(spec, 3 + i));
    expected.push_back(invalid ? Verdict::Invalid : Verdict::Valid);
  }
  for (int jobs : {1, 4}) {
    Options options = Options::full();
    options.jobs = jobs;
    const std::vector<BatchItemResult> results =
        analyze_batch(spec, corpus, options);
    ASSERT_EQ(results.size(), corpus.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].error.empty()) << results[i].error;
      EXPECT_EQ(results[i].result.verdict, expected[i])
          << "jobs=" << jobs << " item=" << i;
    }
  }
}

TEST(AnalyzeBatch, PerItemErrorsDoNotKillTheBatch) {
  est::Spec spec = tp0_spec();
  std::vector<tr::Trace> corpus;
  corpus.push_back(sim::tp0_paper_trace(spec, 3));
  corpus.push_back(sim::tp0_paper_trace(spec, 4));

  Options options = Options::full();
  options.jobs = 2;
  // Disabling an ip the traces record inputs at makes validation throw for
  // every item; the batch must survive and report the error per item.
  options.disabled_ips.push_back("u");
  const std::vector<BatchItemResult> results =
      analyze_batch(spec, corpus, options);
  ASSERT_EQ(results.size(), 2u);
  for (const BatchItemResult& r : results) {
    EXPECT_FALSE(r.error.empty());
  }
}

}  // namespace
}  // namespace tango::core
