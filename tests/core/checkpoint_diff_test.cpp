// Copy-vs-trail checkpointing differential: the deep-copy implementation
// of the §2.2 save/restore primitives is the oracle for the undo-log
// (trail) implementation. Over every golden trace under traces/, each
// engine × order-preset cell must produce the SAME verdict and the SAME
// Figure-3 counters (TE/GE/RE/SA, plus pruning/fanout/depth) in both
// modes — the checkpointing layer may change how restore is implemented,
// never what the search explores. A short same-seed fuzz campaign widens
// the net beyond the goldens (TANGO_FUZZ_ITERATIONS knob).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "estelle/spec.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/fuzz.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

#ifndef TANGO_FUZZ_ITERATIONS
#define TANGO_FUZZ_ITERATIONS 50
#endif

namespace tango::fuzz {
namespace {

struct Golden {
  const char* trace_file;
  const char* spec;
  bool initial_state_search;
};

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> g = {
      {"abp_valid.tr", "abp", false},   {"abp_invalid.tr", "abp", false},
      {"ack_paper.tr", "ack", false},   {"inres_valid.tr", "inres", false},
      {"tp0_valid.tr", "tp0", false},   {"lapd_midstream.tr", "lapd", true},
  };
  return g;
}

MatrixResult matrix_for(const Golden& golden, core::CheckpointMode mode) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(golden.spec));
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + golden.trace_file);
  EXPECT_TRUE(file.good()) << golden.trace_file;
  std::stringstream text;
  text << file.rdbuf();
  tr::Trace trace = tr::parse_trace(spec, text.str());

  core::Options base = core::Options::none();
  base.max_transitions = 200'000;
  base.initial_state_search = golden.initial_state_search;
  base.checkpoint = mode;
  return run_matrix(spec, trace,
                    {Engine::Dfs, Engine::HashDfs, Engine::Mdfs}, base,
                    /*chunk=*/3);
}

void expect_identical_search(const EngineRun& copy, const EngineRun& trail,
                             const std::string& context) {
  EXPECT_EQ(copy.verdict, trail.verdict) << context;
  EXPECT_EQ(copy.stats.transitions_executed,
            trail.stats.transitions_executed) << context;  // TE
  EXPECT_EQ(copy.stats.generates, trail.stats.generates) << context;  // GE
  EXPECT_EQ(copy.stats.restores, trail.stats.restores) << context;    // RE
  EXPECT_EQ(copy.stats.saves, trail.stats.saves) << context;          // SA
  EXPECT_EQ(copy.stats.pruned_by_hash, trail.stats.pruned_by_hash)
      << context;
  EXPECT_EQ(copy.stats.fanout_sum, trail.stats.fanout_sum) << context;
  EXPECT_EQ(copy.stats.max_depth, trail.stats.max_depth) << context;
  // The modes differ only in the cost ledger: copy mode never logs trail
  // entries, trail mode skips the per-branch deep copies.
  EXPECT_EQ(copy.stats.trail_entries, 0u) << context;
}

TEST(CheckpointDiff, GoldenTracesAgreeCellByCell) {
  for (const Golden& golden : goldens()) {
    const MatrixResult copy = matrix_for(golden, core::CheckpointMode::Copy);
    const MatrixResult trail =
        matrix_for(golden, core::CheckpointMode::Trail);
    ASSERT_EQ(copy.columns.size(), trail.columns.size());
    for (std::size_t c = 0; c < copy.columns.size(); ++c) {
      ASSERT_EQ(copy.columns[c].runs.size(), trail.columns[c].runs.size());
      for (std::size_t r = 0; r < copy.columns[c].runs.size(); ++r) {
        const EngineRun& cr = copy.columns[c].runs[r];
        const EngineRun& tr_ = trail.columns[c].runs[r];
        ASSERT_EQ(cr.engine, tr_.engine);
        expect_identical_search(
            cr, tr_,
            std::string(golden.trace_file) + " order=" +
                copy.columns[c].order + " engine=" +
                std::string(to_string(cr.engine)));
      }
    }
  }
}

TEST(CheckpointDiff, TrailModeActuallySkipsDeepCopies) {
  // Sanity that the two modes take different code paths on a branching
  // workload: copy mode banks checkpoint bytes per save, trail mode logs
  // undo entries instead.
  const Golden tp0{"tp0_valid.tr", "tp0", false};
  const MatrixResult copy = matrix_for(tp0, core::CheckpointMode::Copy);
  const MatrixResult trail = matrix_for(tp0, core::CheckpointMode::Trail);
  std::uint64_t copy_bytes = 0, copy_trail_entries = 0;
  std::uint64_t trail_entries = 0;
  for (const MatrixColumn& col : copy.columns) {
    for (const EngineRun& run : col.runs) {
      copy_bytes += run.stats.checkpoint_bytes;
      copy_trail_entries += run.stats.trail_entries;
    }
  }
  for (const MatrixColumn& col : trail.columns) {
    for (const EngineRun& run : col.runs) {
      if (run.engine != Engine::Mdfs) {
        // DFS engines in trail mode deep-copy nothing.
        EXPECT_EQ(run.stats.checkpoint_bytes, 0u);
      }
      trail_entries += run.stats.trail_entries;
    }
  }
  EXPECT_GT(copy_bytes, 0u);
  EXPECT_EQ(copy_trail_entries, 0u);
  EXPECT_GT(trail_entries, 0u);
}

TEST(CheckpointDiff, SameSeedFuzzCampaignsMatchAcrossModes) {
  FuzzConfig config;
  config.seed = 11;
  config.iterations = TANGO_FUZZ_ITERATIONS;
  config.specs = {"abp", "inres"};

  config.checkpoint = core::CheckpointMode::Copy;
  std::ostringstream copy_log;
  const FuzzReport copy = run_fuzz(config, &copy_log);
  config.checkpoint = core::CheckpointMode::Trail;
  std::ostringstream trail_log;
  const FuzzReport trail = run_fuzz(config, &trail_log);

  EXPECT_TRUE(copy.clean()) << copy_log.str();
  EXPECT_TRUE(trail.clean()) << trail_log.str();
  EXPECT_EQ(copy.traces_analyzed, trail.traces_analyzed);
  EXPECT_EQ(copy.verdicts, trail.verdicts);
  EXPECT_EQ(copy.oracle_checks, trail.oracle_checks);
  ASSERT_EQ(copy.totals.size(), trail.totals.size());
  for (std::size_t i = 0; i < copy.totals.size(); ++i) {
    EXPECT_EQ(copy.totals[i].engine, trail.totals[i].engine);
    EXPECT_EQ(copy.totals[i].analyses, trail.totals[i].analyses);
    EXPECT_EQ(copy.totals[i].stats.transitions_executed,
              trail.totals[i].stats.transitions_executed);
    EXPECT_EQ(copy.totals[i].stats.generates,
              trail.totals[i].stats.generates);
    EXPECT_EQ(copy.totals[i].stats.restores,
              trail.totals[i].stats.restores);
    EXPECT_EQ(copy.totals[i].stats.saves, trail.totals[i].stats.saves);
  }
}

}  // namespace
}  // namespace tango::fuzz
