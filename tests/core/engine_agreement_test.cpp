// Golden conformance matrix: every stored trace under traces/ is replayed
// through all three analyzer engines (off-line DFS, hash-pruned DFS,
// chunk-fed on-line MDFS) crossed with the four relative-order presets
// (§2.4.2), asserting (a) every column agrees — the engines are different
// search strategies over the same validity relation — and (b) the verdicts
// match the recorded goldens, so an engine regression that flips a verdict
// uniformly is still caught.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "estelle/spec.hpp"
#include "fuzz/differential.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::fuzz {
namespace {

MatrixResult matrix_for(const std::string& trace_file,
                        const std::string& spec_name,
                        bool initial_state_search = false) {
  est::Spec spec = est::compile_spec(specs::builtin_spec(spec_name));
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + trace_file);
  EXPECT_TRUE(file.good()) << trace_file;
  std::stringstream text;
  text << file.rdbuf();
  tr::Trace trace = tr::parse_trace(spec, text.str());

  core::Options base = core::Options::none();
  base.max_transitions = 200'000;
  base.initial_state_search = initial_state_search;
  return run_matrix(spec, trace,
                    {Engine::Dfs, Engine::HashDfs, Engine::Mdfs}, base,
                    /*chunk=*/3);
}

void expect_uniform(const MatrixResult& m, core::Verdict expected) {
  ASSERT_EQ(m.columns.size(), 4u);
  for (const MatrixColumn& column : m.columns) {
    EXPECT_TRUE(column.agreed) << column.disagreement;
    ASSERT_EQ(column.runs.size(), 3u) << column.order;
    EXPECT_EQ(m.column_verdict(column.order), expected) << column.order;
    for (const EngineRun& run : column.runs) {
      if (run.verdict == core::Verdict::Inconclusive) continue;
      EXPECT_EQ(run.verdict, expected)
          << column.order << " " << to_string(run.engine) << " " << run.note;
    }
  }
}

TEST(EngineAgreement, AbpValid) {
  expect_uniform(matrix_for("abp_valid.tr", "abp"), core::Verdict::Valid);
}

TEST(EngineAgreement, AbpInvalid) {
  expect_uniform(matrix_for("abp_invalid.tr", "abp"), core::Verdict::Invalid);
}

TEST(EngineAgreement, AckPaper) {
  expect_uniform(matrix_for("ack_paper.tr", "ack"), core::Verdict::Valid);
}

TEST(EngineAgreement, InresValid) {
  expect_uniform(matrix_for("inres_valid.tr", "inres"), core::Verdict::Valid);
}

TEST(EngineAgreement, Tp0Valid) {
  expect_uniform(matrix_for("tp0_valid.tr", "tp0"), core::Verdict::Valid);
}

TEST(EngineAgreement, LapdMidstream) {
  // Mid-stream capture: the matching start state is found by the §2.4.1
  // initial-state search, in every engine.
  expect_uniform(matrix_for("lapd_midstream.tr", "lapd",
                            /*initial_state_search=*/true),
                 core::Verdict::Valid);
}

// The on-line analyzer's verdict must not depend on how the trace is cut
// into delivery chunks (a regression here is exactly the §3.1 stale-node
// bug the differential fuzzer found: PGAV conclusions raced the
// end-of-round emptiness check).
TEST(EngineAgreement, MdfsVerdictIsChunkInvariant) {
  est::Spec spec = est::compile_spec(specs::builtin_spec("ack"));
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/ack_paper.tr");
  std::stringstream text;
  text << file.rdbuf();
  tr::Trace trace = tr::parse_trace(spec, text.str());
  core::Options base = core::Options::io();
  base.max_transitions = 200'000;
  for (std::size_t chunk : {0u, 1u, 2u, 3u, 5u, 7u, 64u}) {
    EngineRun run = run_engine(spec, trace, base, Engine::Mdfs, chunk);
    EXPECT_EQ(run.verdict, core::Verdict::Valid) << "chunk=" << chunk;
  }
}

}  // namespace
}  // namespace tango::fuzz
