#include "core/generator.hpp"

#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {
namespace {

constexpr std::string_view kSpec = R"(
specification s;
channel CH(A, B);
  by A: go; d(v: integer);
  by B: r(v: integer);
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  var x: integer;
  state z, w;
  initialize to z begin x := 0; end;
  trans
    from z to z when P.go name a: begin end;
    from z to w when P.go name b: begin end;
    from z to z when Q.d provided v > 0 name c: begin x := v; end;
    from z to z provided x > 10 name spont: begin output P.r(x); end;
    from w to z when P.go name from_w_only: begin end;
end;
end.
)";

struct Fixture {
  Fixture() : spec(est::compile_spec(kSpec)), interp(spec) {}

  GenResult gen(const tr::Trace& trace, const Options& opts,
                SearchState* out_state = nullptr) {
    ResolvedOptions ro(spec, opts);
    InitResult init = apply_initializer(interp, trace, ro, 0, stats);
    EXPECT_TRUE(init.ok);
    if (out_state != nullptr) *out_state = init.state;
    SearchState& st = out_state != nullptr ? *out_state : init.state;
    return generate(interp, trace, ro, st, stats);
  }

  est::Spec spec;
  rt::Interp interp;
  Stats stats;
};

int transition_index(const est::Spec& spec, std::string_view name) {
  const auto& ts = spec.body().transitions;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(Generator, OffersWhenTransitionsMatchingQueueHead) {
  Fixture f;
  tr::Trace t = tr::parse_trace(f.spec, "in p.go\n");
  GenResult g = f.gen(t, Options::none());
  // a and b both consume go; c's queue is empty; spont's provided is false.
  ASSERT_EQ(g.firings.size(), 2u);
  EXPECT_EQ(g.firings[0].transition, transition_index(f.spec, "a"));
  EXPECT_EQ(g.firings[1].transition, transition_index(f.spec, "b"));
  EXPECT_EQ(g.firings[0].input_event, 0);
  EXPECT_FALSE(g.incomplete);  // static trace (eof marked)
}

TEST(Generator, FromStateFiltering) {
  Fixture f;
  tr::Trace t = tr::parse_trace(f.spec, "in p.go\n");
  SearchState st;
  (void)f.gen(t, Options::none(), &st);
  st.machine.fsm_state = f.spec.state_ordinal("w");
  const Options opts = Options::none();
  ResolvedOptions ro(f.spec, opts);
  GenResult g = generate(f.interp, t, ro, st, f.stats);
  ASSERT_EQ(g.firings.size(), 1u);
  EXPECT_EQ(g.firings[0].transition,
            transition_index(f.spec, "from_w_only"));
}

TEST(Generator, ProvidedGuardsEvaluateAgainstBinding) {
  Fixture f;
  tr::Trace pos = tr::parse_trace(f.spec, "in q.d(3)\n");
  GenResult g = f.gen(pos, Options::none());
  ASSERT_EQ(g.firings.size(), 1u);
  EXPECT_EQ(g.firings[0].binding[0].scalar(), 3);

  tr::Trace neg = tr::parse_trace(f.spec, "in q.d(-3)\n");
  GenResult g2 = f.gen(neg, Options::none());
  EXPECT_TRUE(g2.firings.empty());
}

TEST(Generator, WrongInteractionAtQueueHeadBlocks) {
  Fixture f;
  // d is behind go in q? No — different ips. Here Q's head is d, so the
  // go-consuming transitions cannot fire from Q, and P has no pending
  // input at all.
  tr::Trace t = tr::parse_trace(f.spec, "in q.d(1)\nin p.go\n");
  GenResult g = f.gen(t, Options::none());
  // a, b (from p.go) and c (from q.d) are all fireable: heads match.
  EXPECT_EQ(g.firings.size(), 3u);
}

TEST(Generator, IncompleteOnlyWhenTraceCanGrow) {
  Fixture f;
  tr::Trace open(static_cast<int>(f.spec.ips.size()));  // no eof
  GenResult g = f.gen(open, Options::none());
  EXPECT_TRUE(g.firings.empty());
  EXPECT_TRUE(g.incomplete);  // when-transitions may become fireable (PG)

  tr::Trace closed = tr::parse_trace(f.spec, "");  // eof assumed
  GenResult g2 = f.gen(closed, Options::none());
  EXPECT_FALSE(g2.incomplete);
}

TEST(Generator, DisabledIpNeverOffersAndNeverMarksPg) {
  Fixture f;
  tr::Trace open(static_cast<int>(f.spec.ips.size()));
  Options opts = Options::none();
  opts.disabled_ips = {"p", "q"};
  ResolvedOptions ro(f.spec, opts);
  SearchState st;
  InitResult init = apply_initializer(f.interp, open, ro, 0, f.stats);
  st = init.state;
  GenResult g = generate(f.interp, open, ro, st, f.stats);
  EXPECT_TRUE(g.firings.empty());
  EXPECT_FALSE(g.incomplete);  // §3.2.1: disabling prevents degenerate MDFS
}

TEST(Generator, UnobservableIpSynthesizesUndefinedBinding) {
  Fixture f;
  tr::Trace t = tr::parse_trace(f.spec, "");
  Options opts = Options::none();
  opts.partial = true;
  opts.unobservable_ips = {"q"};
  ResolvedOptions ro(f.spec, opts);
  rt::Interp partial_interp(f.spec, rt::EvalMode::Partial);
  InitResult init = apply_initializer(partial_interp, t, ro, 0, f.stats);
  ASSERT_TRUE(init.ok);
  GenResult g = generate(partial_interp, t, ro, init.state, f.stats);
  // c fires with a synthesized undefined v (provided v > 0 is undefined =>
  // assumed true, paper §5.1-5.2).
  ASSERT_EQ(g.firings.size(), 1u);
  EXPECT_TRUE(g.firings[0].synthesized);
  ASSERT_EQ(g.firings[0].binding.size(), 1u);
  EXPECT_TRUE(g.firings[0].binding[0].is_undefined());
}

TEST(Generator, PriorityKeepsOnlyBestGroup) {
  est::Spec spec = est::compile_spec(R"(
specification s;
channel CH(A, B); by A: m;
module M systemprocess; ip P: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when P.m priority 3 name low: begin end;
    from z to z when P.m priority 1 name high: begin end;
    from z to z when P.m name unprioritized: begin end;
end;
end.
)");
  rt::Interp interp(spec);
  Stats stats;
  tr::Trace t = tr::parse_trace(spec, "in p.m\n");
  const Options opts = Options::none();
  ResolvedOptions ro(spec, opts);
  InitResult init = apply_initializer(interp, t, ro, 0, stats);
  GenResult g = generate(interp, t, ro, init.state, stats);
  ASSERT_EQ(g.firings.size(), 1u);
  EXPECT_EQ(g.firings[0].transition, transition_index(spec, "high"));
}

TEST(Generator, FanoutStatisticsAccumulate) {
  Fixture f;
  tr::Trace t = tr::parse_trace(f.spec, "in p.go\n");
  (void)f.gen(t, Options::none());
  EXPECT_EQ(f.stats.generates, 1u);
  EXPECT_EQ(f.stats.fanout_samples, 1u);
  EXPECT_EQ(f.stats.fanout_sum, 2u);
}

}  // namespace
}  // namespace tango::core
