// core::AnalysisSession (src/core/session.hpp): the re-entrant wrapper the
// server mounts on a socket-fed ChunkSource — bounded pumps, interim
// assessment *edges* (reported once per change, not once per poll), and
// the cooperative abort that concludes Inconclusive reason "shutdown".
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/verdict.hpp"
#include "estelle/spec.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"

namespace tango::core {
namespace {

std::string golden(const std::string& name) {
  std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + name);
  EXPECT_TRUE(file.good()) << name;
  std::stringstream text;
  text << file.rdbuf();
  return text.str();
}

est::Spec abp_spec() { return est::compile_spec(specs::builtin_spec("abp")); }

OnlineConfig io_config() {
  OnlineConfig cfg;
  cfg.options = Options::io();
  cfg.options.max_transitions = 200'000;
  return cfg;
}

TEST(AnalysisSession, PumpsAGrownTraceToItsVerdict) {
  const est::Spec spec = abp_spec();
  tr::ChunkSource source(spec);
  AnalysisSession session(spec, source, io_config());

  source.push_chunk(golden("abp_valid.tr"));  // carries its own eof line
  while (!session.conclusive()) session.pump(64);
  EXPECT_EQ(session.status(), OnlineStatus::Valid);
  EXPECT_GT(session.stats().transitions_executed, 0u);
}

TEST(AnalysisSession, ReportsAssessmentEdgesOncePerChange) {
  const est::Spec spec = abp_spec();
  tr::ChunkSource source(spec);
  AnalysisSession session(spec, source, io_config());

  // Feed a valid prefix without eof: the session quiesces ValidSoFar.
  std::string text = golden("abp_valid.tr");
  text = text.substr(0, text.find("eof"));
  source.push_chunk(text);
  for (int i = 0; i < 64; ++i) session.pump(4096);
  ASSERT_EQ(session.status(), OnlineStatus::ValidSoFar);

  OnlineStatus edge = OnlineStatus::Searching;
  ASSERT_TRUE(session.take_status_change(edge));
  EXPECT_EQ(edge, OnlineStatus::ValidSoFar);
  // The same status is not an edge the second time...
  EXPECT_FALSE(session.take_status_change(edge));

  // ...but the conclusive transition at eof is.
  source.push_eof();
  while (!session.conclusive()) session.pump(4096);
  ASSERT_TRUE(session.take_status_change(edge));
  EXPECT_EQ(edge, OnlineStatus::Valid);
}

TEST(AnalysisSession, AbortConcludesInconclusiveShutdown) {
  const est::Spec spec = abp_spec();
  tr::ChunkSource source(spec);
  AnalysisSession session(spec, source, io_config());

  std::string text = golden("abp_valid.tr");
  source.push_chunk(text.substr(0, text.find("eof")));
  session.pump(4096);
  ASSERT_FALSE(session.conclusive());

  session.abort(InconclusiveReason::Shutdown);
  EXPECT_TRUE(session.conclusive());
  EXPECT_EQ(session.status(), OnlineStatus::Inconclusive);
  EXPECT_EQ(session.stats().reason, InconclusiveReason::Shutdown);

  // Conclusive statuses are sticky: pumps and aborts are no-ops now.
  session.pump(4096);
  session.abort(InconclusiveReason::Deadline);
  EXPECT_EQ(session.stats().reason, InconclusiveReason::Shutdown);
  session.finalize_stream();  // idempotent without a sink
  session.finalize_stream();
}

TEST(AnalysisSession, AbortNeverDowngradesAConclusiveVerdict) {
  const est::Spec spec = abp_spec();
  tr::ChunkSource source(spec);
  AnalysisSession session(spec, source, io_config());
  source.push_chunk(golden("abp_valid.tr"));
  while (!session.conclusive()) session.pump(4096);
  ASSERT_EQ(session.status(), OnlineStatus::Valid);
  session.abort(InconclusiveReason::Shutdown);
  EXPECT_EQ(session.status(), OnlineStatus::Valid);
}

}  // namespace
}  // namespace tango::core
