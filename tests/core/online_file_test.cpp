// End-to-end on-line analysis over a real growing FILE — the deployment
// shape of §3: another process appends to the trace file while the
// analyzer follows it (tango's `online` command uses exactly this path).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/mdfs.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"

namespace tango::core {
namespace {

class OnlineFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/tango_online_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".tr";
    std::ofstream(path_, std::ios::trunc).flush();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void append(const std::string& text) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << text;
  }

  std::string path_;
};

TEST_F(OnlineFileTest, FollowsAGrowingAckTrace) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::FileFollower follower(spec, path_);
  OnlineConfig config;
  config.options = Options::none();
  OnlineAnalyzer analyzer(spec, follower, config);

  append("in a.x\nin a.x\n");
  EXPECT_EQ(analyzer.step_round(1 << 14), OnlineStatus::ValidSoFar);

  append("in a.x\nin b.y\nout a.ack\n");
  EXPECT_EQ(analyzer.step_round(1 << 14), OnlineStatus::ValidSoFar);

  append("eof\n");
  EXPECT_EQ(analyzer.step_round(1 << 16), OnlineStatus::Valid);
  EXPECT_TRUE(analyzer.conclusive());
}

TEST_F(OnlineFileTest, PartialLinesAreBuffered) {
  est::Spec spec = est::compile_spec(specs::ack());
  tr::FileFollower follower(spec, path_);
  OnlineConfig config;
  config.options = Options::none();
  OnlineAnalyzer analyzer(spec, follower, config);

  append("in a.");  // a torn write: must not be parsed yet
  // An empty trace is trivially all-verified: valid so far, zero events.
  EXPECT_EQ(analyzer.step_round(1 << 12), OnlineStatus::ValidSoFar);
  EXPECT_TRUE(analyzer.trace().events().empty());

  append("x\n");  // completes the line
  EXPECT_EQ(analyzer.step_round(1 << 14), OnlineStatus::ValidSoFar);
  EXPECT_EQ(analyzer.trace().events().size(), 1u);
}

TEST_F(OnlineFileTest, InvalidEventInFileDetected) {
  est::Spec spec = est::compile_spec(specs::lapd());
  tr::FileFollower follower(spec, path_);
  OnlineConfig config;
  config.options = Options::io();
  OnlineAnalyzer analyzer(spec, follower, config);

  append("in  u.dl_establish_req\nout l.sabme\nin  l.ua\n"
         "out u.dl_establish_cnf\n");
  EXPECT_EQ(analyzer.step_round(1 << 15), OnlineStatus::ValidSoFar);

  append("in  u.dl_data_req(5)\nout l.iframe(4, 0, 5)\neof\n");  // N(S)!=0
  EXPECT_EQ(analyzer.step_round(1 << 17), OnlineStatus::Invalid);
}

}  // namespace
}  // namespace tango::core
