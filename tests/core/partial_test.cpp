// Partial trace analysis (paper §5): unknown initial states, unobservable
// ips with synthesized undefined inputs, undefined-tolerant comparisons,
// and the infinite-tree hazards of §5.4 handled by search bounds.
#include <gtest/gtest.h>

#include "core/dfs.hpp"
#include "specs/builtin_specs.hpp"
#include "transform/normal_form.hpp"

namespace tango::core {
namespace {

Options lower_interface_only(std::initializer_list<const char*> hidden) {
  Options opts = Options::full();
  opts.partial = true;
  for (const char* ip : hidden) {
    opts.unobservable_ips.push_back(ip);
    opts.disabled_ips.push_back(ip);  // outputs there are unobserved too
  }
  opts.max_depth = 32;
  return opts;
}

TEST(Partial, Tp0LowerInterfaceOnlyTrace) {
  // §4.1's wish, applied to TP0: analyze only the packets at the lower
  // interface; everything at U is synthesized with undefined parameters.
  est::Spec spec = est::compile_spec(specs::tp0());
  const char* trace =
      "out n.cr\n"
      "in  n.cc\n"
      "out n.dt(5)\n"
      "out n.dt(6)\n";
  DfsResult r = analyze_text(spec, trace, lower_interface_only({"u"}));
  EXPECT_EQ(r.verdict, Verdict::Valid);
}

TEST(Partial, LowerInterfaceTraceWithImpossibleOrderIsInvalid) {
  est::Spec spec = est::compile_spec(specs::tp0());
  // cc before cr is impossible no matter what the user side did: the
  // module only sends cr from closed, and consumes cc only in wfcc.
  const char* trace =
      "in  n.cc\n"
      "out n.cr\n"
      "out n.dt(5)\n";
  DfsResult r = analyze_text(spec, trace, lower_interface_only({"u"}));
  EXPECT_NE(r.verdict, Verdict::Valid);
}

TEST(Partial, UndefinedParametersCompareEqual) {
  // An undefined synthesized tdtreq payload matches ANY dt payload in the
  // trace (§5.1) — so two different payloads are both explainable.
  est::Spec spec = est::compile_spec(specs::tp0());
  for (const char* trace : {"out n.cr\nin n.cc\nout n.dt(1)\n",
                            "out n.cr\nin n.cc\nout n.dt(999)\n"}) {
    EXPECT_EQ(analyze_text(spec, trace, lower_interface_only({"u"})).verdict,
              Verdict::Valid);
  }
}

TEST(Partial, UndefinedTraceValuesMatchConcreteOutputs) {
  // `_` in the trace file is an undefined observation (e.g. a field the
  // monitor could not decode); it matches whatever the TAM produces.
  est::Spec spec = est::compile_spec(specs::abp());
  Options opts = Options::io();
  opts.partial = true;
  const char* trace =
      "in  u.send(5)\n"
      "out m.frame(_, 5)\n"
      "in  m.ack(0)\n"
      "out u.confirm\n";
  EXPECT_EQ(analyze_text(spec, trace, opts).verdict, Verdict::Valid);
  // In strict mode the same trace parses but the undefined parameter can
  // never equal the produced 0.
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict,
            Verdict::Invalid);
}

TEST(Partial, SearchBudgetBoundsTheInfiniteTree) {
  // §5.4: with an unobservable ip, a cycle reading only that ip yields an
  // infinite search tree. Without a depth bound the analysis must stop at
  // the transition budget and admit inconclusiveness, not spin forever.
  est::Spec spec = est::compile_spec(specs::tp0());
  Options opts = Options::full();
  opts.partial = true;
  opts.unobservable_ips = {"u"};
  opts.disabled_ips = {"u"};
  opts.max_transitions = 5000;
  // After the handshake the second cc can never be consumed, so no
  // solution exists — but t13 keeps synthesizing tdtreq enqueues (no
  // output, fresh heap cell each time), an infinite outputless chain.
  DfsResult r = analyze_text(spec, "out n.cr\nin n.cc\nin n.cc\n", opts);
  EXPECT_EQ(r.verdict, Verdict::Inconclusive);
  EXPECT_GE(r.stats.transitions_executed, 5000u);
}

TEST(Partial, UnknownInitialStateWithSearchOption) {
  // §5: a partial trace "begins with trace data from an IUT which is not
  // necessarily in its initial state" — combine the §2.4.1 search with
  // partial mode. A lone rr ack is only consumable in
  // multiple_frame_established.
  est::Spec spec = est::compile_spec(specs::lapd());
  // An incoming I frame answered with data-indication and RR is only
  // explainable in multiple_frame_established.
  const char* trace =
      "in  l.iframe(0, 0, 7)\n"
      "out u.dl_data_ind(7)\n"
      "out l.rr(1)\n";
  Options opts = Options::io();
  opts.partial = true;  // module vars hold whatever initialize left; the
                        // FSM state alone is searched (§2.4.1 caveat)
  opts.initial_state_search = true;
  DfsResult r = analyze_text(spec, trace, opts);
  EXPECT_EQ(r.verdict, Verdict::Valid);
  EXPECT_EQ(r.solution[0], "initialize to multiple_frame_established");
  // Without the option the same trace is invalid: tei_assigned silently
  // drops the frame and can never emit the indication.
  EXPECT_EQ(analyze_text(spec, trace, Options::io()).verdict,
            Verdict::Invalid);
}

TEST(Partial, ControlStatementOnUndefinedNeedsNormalForm) {
  // §5.3: an if over an undefined (synthesized) parameter cannot be
  // analyzed directly...
  constexpr std::string_view src = R"(
specification s;
channel CH(A, B); by A: d(v: integer); by B: big; small;
module M systemprocess; ip P: CH(B); Q: CH(B); end;
body MB for M;
  state z;
  initialize to z begin end;
  trans
    from z to z when Q.d name t:
    begin
      if v > 10 then output P.big else output P.small;
    end;
end;
end.
)";
  est::Spec spec = est::compile_spec(src);
  Options opts;
  opts.partial = true;
  opts.unobservable_ips = {"q"};
  opts.max_depth = 4;
  DfsResult direct = analyze_text(spec, "out p.big\n", opts);
  EXPECT_NE(direct.verdict, Verdict::Valid);
  EXPECT_NE(direct.note.find("normal-form"), std::string::npos);

  // ... but after the §5.3 transformation both branches become provided
  // alternatives and the trace validates.
  std::string transformed = transform::normal_form_source(src);
  est::Spec nf = est::compile_spec(transformed);
  EXPECT_EQ(analyze_text(nf, "out p.big\n", opts).verdict, Verdict::Valid);
  EXPECT_EQ(analyze_text(nf, "out p.small\n", opts).verdict, Verdict::Valid);
}

TEST(Partial, StrictModeIsUnaffectedByPartialScaffolding) {
  // Sanity: partial mode off, fully observed traces behave identically
  // whether or not the options struct carries partial-related defaults.
  est::Spec spec = est::compile_spec(specs::ack());
  DfsResult r = analyze_text(spec, "in a.x\nin b.y\nout a.ack\n",
                             Options::none());
  EXPECT_EQ(r.verdict, Verdict::Valid);
}

}  // namespace
}  // namespace tango::core
